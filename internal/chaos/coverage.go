package chaos

import (
	"encoding/json"
	"sort"
	"sync"

	"mssp/internal/core"
	"mssp/internal/obs"
	"mssp/internal/taint"
)

// Coverage tallies which lifecycle event kinds and squash-taxonomy reasons a
// run (or a whole soak) provoked. It is an obs.Sink, safe for concurrent
// use, so one Coverage can be attached to many machines at once and merged
// across seeds; the soak's exit criterion is MissingKinds and MissingReasons
// both empty.
type Coverage struct {
	mu sync.Mutex
	// Kinds counts events per lifecycle kind.
	Kinds map[string]uint64 `json:"kinds"`
	// Reasons counts squash events per taxonomy reason.
	Reasons map[string]uint64 `json:"reasons"`
	// Gadgets counts generated leak gadgets per kind (taint mode; fed from
	// GenConfig.Gadgets via AddGadgets, not from the event stream).
	Gadgets map[string]uint64 `json:"gadgets,omitempty"`
	// Flags counts dynamic taint-observer findings per kind (taint mode;
	// fed from taint.Observer counts via AddFlags).
	Flags map[string]uint64 `json:"flags,omitempty"`
}

// NewCoverage returns an empty tally.
func NewCoverage() *Coverage {
	return &Coverage{
		Kinds:   map[string]uint64{},
		Reasons: map[string]uint64{},
		Gadgets: map[string]uint64{},
		Flags:   map[string]uint64{},
	}
}

// Emit implements obs.Sink.
func (c *Coverage) Emit(ev obs.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Kinds[string(ev.Kind)]++
	if ev.Kind == obs.KindSquash && ev.Reason != "" {
		c.Reasons[ev.Reason]++
	}
}

// Merge folds o's tallies into c.
func (c *Coverage) Merge(o *Coverage) {
	if o == nil {
		return
	}
	o.mu.Lock()
	kinds, reasons := cloneCounts(o.Kinds), cloneCounts(o.Reasons)
	gadgets, flags := cloneCounts(o.Gadgets), cloneCounts(o.Flags)
	o.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, n := range kinds {
		c.Kinds[k] += n
	}
	for r, n := range reasons {
		c.Reasons[r] += n
	}
	for g, n := range gadgets {
		c.addGadgetLocked(g, n)
	}
	for f, n := range flags {
		c.addFlagLocked(f, n)
	}
}

// AddGadgets folds a generator's per-kind gadget tally (GenConfig.Gadgets)
// into the coverage, so a taint soak can require every gadget shape was
// actually emitted.
func (c *Coverage) AddGadgets(tally map[string]int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, n := range tally {
		if n > 0 {
			c.addGadgetLocked(k, uint64(n))
		}
	}
}

// AddFlags folds a dynamic taint observer's per-kind flag counts into the
// coverage.
func (c *Coverage) AddFlags(counts map[string]int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, n := range counts {
		if n > 0 {
			c.addFlagLocked(k, uint64(n))
		}
	}
}

func (c *Coverage) addGadgetLocked(k string, n uint64) {
	if c.Gadgets == nil {
		c.Gadgets = map[string]uint64{}
	}
	c.Gadgets[k] += n
}

func (c *Coverage) addFlagLocked(k string, n uint64) {
	if c.Flags == nil {
		c.Flags = map[string]uint64{}
	}
	c.Flags[k] += n
}

// allKinds is the full lifecycle vocabulary a soak must provoke.
var allKinds = []string{
	string(obs.KindFork), string(obs.KindDispatch), string(obs.KindVerify),
	string(obs.KindCommit), string(obs.KindSquash),
	string(obs.KindFallbackEnter), string(obs.KindFallbackExit),
}

// MissingKinds returns the lifecycle kinds never observed, sorted.
func (c *Coverage) MissingKinds() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return missing(allKinds, c.Kinds)
}

// MissingReasons returns the squash reasons never observed, sorted. With
// faults true the full taxonomy (core.AllSquashReasons) is required;
// otherwise only the organic reasons, since "dropped" and "forced" cannot
// occur without injection.
func (c *Coverage) MissingReasons(faults bool) []string {
	want := core.OrganicSquashReasons
	if faults {
		want = core.AllSquashReasons()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return missing(want, c.Reasons)
}

// MissingGadgets returns the leak-gadget kinds a taint soak never generated,
// sorted. Only meaningful when the soak ran with taint-mode generation.
func (c *Coverage) MissingGadgets() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return missing(AllGadgetKinds(), c.Gadgets)
}

// MissingFlags returns the dynamic taint-flag kinds never raised, sorted.
// Only meaningful when the soak ran with taint-mode generation.
func (c *Coverage) MissingFlags() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return missing(taint.AllFlags(), c.Flags)
}

// MarshalJSON locks around the map reads so a soak can snapshot coverage
// while machines are still emitting.
func (c *Coverage) MarshalJSON() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return json.Marshal(struct {
		Kinds   map[string]uint64 `json:"kinds"`
		Reasons map[string]uint64 `json:"reasons"`
		Gadgets map[string]uint64 `json:"gadgets,omitempty"`
		Flags   map[string]uint64 `json:"flags,omitempty"`
	}{c.Kinds, c.Reasons, c.Gadgets, c.Flags})
}

func missing(want []string, have map[string]uint64) []string {
	var out []string
	for _, w := range want {
		if have[w] == 0 {
			out = append(out, w)
		}
	}
	sort.Strings(out)
	return out
}

func cloneCounts(m map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
