package chaos

import (
	"encoding/json"
	"sort"
	"sync"

	"mssp/internal/core"
	"mssp/internal/obs"
)

// Coverage tallies which lifecycle event kinds and squash-taxonomy reasons a
// run (or a whole soak) provoked. It is an obs.Sink, safe for concurrent
// use, so one Coverage can be attached to many machines at once and merged
// across seeds; the soak's exit criterion is MissingKinds and MissingReasons
// both empty.
type Coverage struct {
	mu sync.Mutex
	// Kinds counts events per lifecycle kind.
	Kinds map[string]uint64 `json:"kinds"`
	// Reasons counts squash events per taxonomy reason.
	Reasons map[string]uint64 `json:"reasons"`
}

// NewCoverage returns an empty tally.
func NewCoverage() *Coverage {
	return &Coverage{Kinds: map[string]uint64{}, Reasons: map[string]uint64{}}
}

// Emit implements obs.Sink.
func (c *Coverage) Emit(ev obs.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Kinds[string(ev.Kind)]++
	if ev.Kind == obs.KindSquash && ev.Reason != "" {
		c.Reasons[ev.Reason]++
	}
}

// Merge folds o's tallies into c.
func (c *Coverage) Merge(o *Coverage) {
	if o == nil {
		return
	}
	o.mu.Lock()
	kinds, reasons := cloneCounts(o.Kinds), cloneCounts(o.Reasons)
	o.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, n := range kinds {
		c.Kinds[k] += n
	}
	for r, n := range reasons {
		c.Reasons[r] += n
	}
}

// allKinds is the full lifecycle vocabulary a soak must provoke.
var allKinds = []string{
	string(obs.KindFork), string(obs.KindDispatch), string(obs.KindVerify),
	string(obs.KindCommit), string(obs.KindSquash),
	string(obs.KindFallbackEnter), string(obs.KindFallbackExit),
}

// MissingKinds returns the lifecycle kinds never observed, sorted.
func (c *Coverage) MissingKinds() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return missing(allKinds, c.Kinds)
}

// MissingReasons returns the squash reasons never observed, sorted. With
// faults true the full taxonomy (core.AllSquashReasons) is required;
// otherwise only the organic reasons, since "dropped" and "forced" cannot
// occur without injection.
func (c *Coverage) MissingReasons(faults bool) []string {
	want := core.OrganicSquashReasons
	if faults {
		want = core.AllSquashReasons()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return missing(want, c.Reasons)
}

// MarshalJSON locks around the map reads so a soak can snapshot coverage
// while machines are still emitting.
func (c *Coverage) MarshalJSON() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return json.Marshal(struct {
		Kinds   map[string]uint64 `json:"kinds"`
		Reasons map[string]uint64 `json:"reasons"`
	}{c.Kinds, c.Reasons})
}

func missing(want []string, have map[string]uint64) []string {
	var out []string
	for _, w := range want {
		if have[w] == 0 {
			out = append(out, w)
		}
	}
	sort.Strings(out)
	return out
}

func cloneCounts(m map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
