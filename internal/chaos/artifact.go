package chaos

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Artifact is the JSONL failure record cmd/msspfuzz writes: everything
// needed to reproduce a failing differential run. Replay needs only Seed,
// FaultIntensity and the taint mode recorded in Gen — the whole run is a
// pure function of those — but the record also carries the rendered failures
// and the generated-program shape so a human can triage without re-running.
type Artifact struct {
	// Seed replays the run: chaos.Run({Seed, FaultIntensity}).
	Seed uint64 `json:"seed"`
	// FaultIntensity is the faulted leg's intensity at failure time.
	FaultIntensity float64 `json:"faultIntensity"`
	// Gen is the generated program's shape summary.
	Gen GenConfig `json:"gen"`
	// Knobs is the derived machine configuration.
	Knobs Knobs `json:"knobs"`
	// Failures lists every divergence the run found, rendered.
	Failures []string `json:"failures"`
}

// NewArtifact extracts the reproduction record from a failing report.
func NewArtifact(rep *Report) *Artifact {
	return &Artifact{
		Seed:           rep.Seed,
		FaultIntensity: rep.FaultIntensity,
		Gen:            rep.Gen,
		Knobs:          rep.Knobs,
		Failures:       rep.Failures,
	}
}

// WriteJSONL appends the artifact as one JSON line.
func (a *Artifact) WriteJSONL(w io.Writer) error {
	b, err := json.Marshal(a)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadArtifacts parses a JSONL stream of artifacts (cmd/msspfuzz -replay).
// Blank lines are skipped; a malformed line is an error naming its number.
func ReadArtifacts(r io.Reader) ([]*Artifact, error) {
	var out []*Artifact
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		a := &Artifact{}
		if err := json.Unmarshal(sc.Bytes(), a); err != nil {
			return nil, fmt.Errorf("chaos: artifact line %d: %w", line, err)
		}
		out = append(out, a)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
