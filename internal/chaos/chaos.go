// Package chaos is the deterministic fault-injection and differential
// fuzzing harness for the MSSP machine. It hunts for divergence between the
// speculative machine (internal/core) and the sequential reference by
// generating seeded random MIR programs and running each one three ways:
//
//  1. sequential baseline (cpu.Seq to halt);
//  2. MSSP clean, audited by the internal/refine jumping-refinement checker
//     and by an internal/model task-safety shadow;
//  3. MSSP with injected faults (core.Config.Fault driven by a FaultPlan),
//     audited the same way.
//
// The contract: all three executions must end in byte-identical committed
// architected state, every commit must be a safe jump of the sequential
// model, and no injected fault may ever corrupt architected state — faults
// corrupt predictions and perturb timing only, and the verify/commit unit
// must contain them. Each run also records which lifecycle event kinds and
// squash reasons it provoked, so taxonomy coverage is measurable and a soak
// can enforce it.
//
// Everything is keyed by a single uint64 seed: the generated program, the
// machine configuration, the distillation options and the fault plan all
// derive from it, so any failure replays exactly (cmd/msspfuzz -replay).
// docs/TESTING.md describes the contract, the fault taxonomy and the
// reproduction workflow.
package chaos

import (
	"fmt"
	"math/rand"

	"mssp/internal/core"
	"mssp/internal/cpu"
	"mssp/internal/distill"
	"mssp/internal/model"
	"mssp/internal/obs"
	"mssp/internal/parallel"
	"mssp/internal/predict"
	"mssp/internal/profile"
	"mssp/internal/refine"
	"mssp/internal/state"
	"mssp/internal/taint"
	"mssp/internal/task"
	"mssp/internal/vet"
)

// Options configures one differential run.
type Options struct {
	// Seed keys everything: program, machine config, distillation, fault
	// plan.
	Seed uint64
	// FaultIntensity in [0, 1] scales fault-injection probability for the
	// faulted leg; zero skips the faulted leg entirely.
	FaultIntensity float64
	// MaxSeqSteps bounds the sequential baseline (and transitively the
	// generated program's dynamic length). Zero means a generous default;
	// a generated program that fails to halt inside the bound is reported
	// as a failure, so the fuzzer also polices the generator itself.
	MaxSeqSteps uint64
	// ModelCheckCap bounds how many commits the internal/model task-safety
	// shadow re-derives per leg (full-state sequential re-execution is the
	// most expensive audit). Zero means 256.
	ModelCheckCap int
	// Observe, when non-nil, is attached to both MSSP legs' lifecycle
	// streams (obs.Attach semantics), in addition to the harness's own
	// coverage sink. Used by the JSONL hammer tests and cmd/msspfuzz -trace.
	Observe func(leg string, cfg *core.Config)
	// Interp selects the execution core: "fast" (or empty, the default)
	// uses the predecoded/devirtualized interpreter everywhere; "slow"
	// forces the per-step fetch+decode path (core.Config.DisableFastPath)
	// for the sequential baseline and both MSSP legs. The two settings must
	// produce byte-identical reports — the interpreter differential in
	// interp_test.go and cmd/msspfuzz -interp both run each seed both ways.
	Interp string
	// Fuse selects superinstruction dispatch on the fast interpreter:
	// "on" (or empty, the default) lets the MSSP legs run fused tables;
	// "off" forces single-instruction dispatch (core.Config.DisableFusion).
	// Like Interp, the two settings must produce byte-identical reports —
	// fuse_test.go and cmd/msspfuzz -fuse run each seed both ways. The knob
	// is meaningless (and ignored) when Interp is "slow", which bypasses
	// the predecoded tables entirely.
	Fuse string
	// DistillPasses turns on every analysis-driven distillation pass
	// (dead-code elimination, checkpoint-aware store sinking, assumption-
	// seeded constant folding). The architected results must be bit-
	// identical with the passes on or off — that is the passes' whole
	// soundness contract, and passes_test.go enforces it differentially
	// across the seed corpus.
	DistillPasses bool
	// Engine selects which speculative machines the differential runs.
	// "" or "det" runs the deterministic machine only (the historical
	// three-way differential). "parallel" additionally runs the seed on the
	// true-parallel engine (internal/parallel) — clean and, with faults,
	// injected legs — audited by the same streaming refinement checker,
	// model shadow and coverage sink, and cross-checks its final digests
	// against the deterministic legs' (a four/five-way differential).
	// Parallel legs carry schedule-dependent metrics, so reports for
	// Engine "parallel" are not byte-comparable across runs; the interp
	// differential ("both") therefore refuses to combine with it.
	Engine string
	// Predict attaches a fresh value predictor (internal/predict, kind
	// derived from the seed) to every MSSP leg and distills with
	// PredictableSlots so the predictor has registers to fill. Clean legs
	// run with live prediction — the digests must still match the baseline
	// (a wrong prediction is just another contained misprediction). Faulted
	// legs must leave their unit completely untrained: the engines gate
	// prediction off under fault injection so a corrupted checkpoint can
	// never poison the table, and the harness fails the seed if the unit
	// absorbed anything.
	Predict bool
	// Taint switches the generator into taint mode (secret data segment,
	// leak-gadget emission, Secret region annotations on ~75% of seeds) and
	// arms the security differential: the static leak rules (vet.CheckTaint,
	// rooted at the distiller's anchors) run over the generated program, a
	// dynamic taint observer (internal/taint) replays every task on the
	// clean legs, and the run fails if dominance is violated — a program the
	// static analysis certifies clean must never be flagged dynamically.
	// Fault legs are never observed: injected faults corrupt task starts and
	// checkpoints, taking dynamic execution outside the static contract.
	Taint bool
}

// Engine values for Options.Engine.
const (
	EngineDet      = "det"
	EngineParallel = "parallel"
)

// defaultMaxSeqSteps bounds generated programs' dynamic length. Generated
// loop nests stay well under this; hitting it means the generator broke its
// own termination invariant.
const defaultMaxSeqSteps = 2_000_000

// LegReport describes one MSSP execution (clean or faulted) of the
// generated program.
type LegReport struct {
	// RefineOK reports whether the jumping-refinement audit passed.
	RefineOK bool `json:"refineOK"`
	// Violations carries the refinement checker's failures, rendered.
	Violations []string `json:"violations,omitempty"`
	// ModelViolations carries task-safety failures found by the
	// internal/model shadow, rendered.
	ModelViolations []string `json:"modelViolations,omitempty"`
	// ModelChecked is the number of commits the model shadow audited.
	ModelChecked int `json:"modelChecked"`
	// Commits is the number of architected-state advances observed.
	Commits int `json:"commits"`
	// FinalMatchesSeq reports whether the leg's final architected state is
	// byte-identical to the sequential baseline's.
	FinalMatchesSeq bool `json:"finalMatchesSeq"`
	// FinalDigest fingerprints the leg's final architected state, so two
	// reports for the same seed (e.g. fast vs slow interpreter) can be
	// compared without re-running.
	FinalDigest uint64 `json:"finalDigest"`
	// Metrics is the machine's one-line metrics summary.
	Metrics string `json:"metrics"`
	// Coverage records the lifecycle kinds and squash reasons provoked.
	Coverage *Coverage `json:"coverage"`
}

// Report is the outcome of one three-way differential run.
type Report struct {
	// Seed is the run's seed.
	Seed uint64 `json:"seed"`
	// FaultIntensity is the faulted leg's intensity (zero: leg skipped).
	FaultIntensity float64 `json:"faultIntensity"`
	// Gen summarizes the generated program.
	Gen GenConfig `json:"gen"`
	// Knobs summarizes the derived machine configuration.
	Knobs Knobs `json:"knobs"`
	// SeqSteps is the sequential baseline's instruction count.
	SeqSteps uint64 `json:"seqSteps"`
	// SeqDigest fingerprints the sequential baseline's final state.
	SeqDigest uint64 `json:"seqDigest"`
	// Clean is the fault-free MSSP leg.
	Clean *LegReport `json:"clean,omitempty"`
	// Fault is the fault-injected MSSP leg (nil when skipped).
	Fault *LegReport `json:"fault,omitempty"`
	// ParClean is the true-parallel engine's clean leg (nil unless
	// Options.Engine is "parallel"). Its final digest must match the
	// deterministic legs' and the sequential baseline's: commit-time live-in
	// verification makes the final state schedule-independent, so goroutine
	// interleaving may change the squash taxonomy but never the state.
	ParClean *LegReport `json:"parClean,omitempty"`
	// ParFault is the true-parallel engine's fault-injected leg (nil unless
	// Options.Engine is "parallel"); same digest contract as ParClean,
	// cross-checked against the deterministic faulted leg.
	ParFault *LegReport `json:"parFault,omitempty"`
	// Taint is the security differential's outcome (nil unless
	// Options.Taint).
	Taint *TaintReport `json:"taint,omitempty"`
	// Failures lists every divergence or harness error, rendered. Empty
	// iff OK.
	Failures []string `json:"failures,omitempty"`
	// OK reports a fully clean differential: both legs refine SEQ, all
	// audits passed, all final states byte-identical.
	OK bool `json:"ok"`
}

// TaintReport is the outcome of one seed's security differential: the static
// leak-rule verdict over the generated program, the dynamic taint observer's
// aggregated findings from the clean legs, and the dominance check tying
// them together.
type TaintReport struct {
	// SecretDeclared reports whether the generator annotated the secret
	// segment as isa.Region — when false the program is vacuously
	// static-clean even though gadgets may touch secret-segment addresses,
	// which is exactly the case that makes the clean direction of the
	// dominance property non-trivial.
	SecretDeclared bool `json:"secretDeclared"`
	// StaticClean reports whether vet.CheckTaint found nothing.
	StaticClean bool `json:"staticClean"`
	// StaticCount is the total number of static findings.
	StaticCount int `json:"staticCount"`
	// StaticFindings renders the first few static findings (capped; see
	// StaticCount for the true total).
	StaticFindings []string `json:"staticFindings,omitempty"`
	// Flags counts the dynamic observer's findings per kind across the
	// clean legs.
	Flags map[string]int `json:"flags,omitempty"`
	// FlagCount is the total number of dynamic flags.
	FlagCount int `json:"flagCount"`
	// Replayed counts the tasks the observers replayed.
	Replayed int `json:"replayed"`
	// Truncated counts the replays cut short defensively (missing live-in
	// cell, PC outside the code segment).
	Truncated int `json:"truncated"`
	// DominanceOK reports the core soundness property: static-clean implies
	// dynamically unflagged. Its violation is a Report failure.
	DominanceOK bool `json:"dominanceOK"`
}

// staticFindingsCap bounds how many rendered static findings a TaintReport
// carries; gadget-dense seeds can produce hundreds.
const staticFindingsCap = 10

// Knobs is the machine/distillation configuration derived from the seed.
// Varying these per seed is what walks the harness through the machine's
// whole behavior space — small task caps provoke overflow, non-speculative
// regions provoke nonspec squashes, aggressive bias thresholds provoke
// live-in misspeculation.
type Knobs struct {
	// Slaves is the slave-processor count.
	Slaves int `json:"slaves"`
	// MaxTaskLen is the speculative buffering cap.
	MaxTaskLen uint64 `json:"maxTaskLen"`
	// MinTaskSpacing is the fork-thinning distance.
	MinTaskSpacing uint64 `json:"minTaskSpacing"`
	// Stride is the profiling anchor stride.
	Stride uint64 `json:"stride"`
	// BiasThreshold is the distiller's pruning threshold.
	BiasThreshold float64 `json:"biasThreshold"`
	// NonSpec reports whether a non-speculative region covers part of the
	// data array.
	NonSpec bool `json:"nonSpec"`
}

// deriveKnobs expands the seed into a machine configuration. The draws use
// an independent rand stream (seed XOR a constant) so knob choices do not
// perturb program generation.
func deriveKnobs(seed uint64) Knobs {
	r := rand.New(rand.NewSource(int64(seed ^ 0xdecaf)))
	lens := []uint64{80, 200, 1000, 100_000}
	strides := []uint64{25, 50, 100}
	biases := []float64{0.80, 0.90, 0.97}
	spacings := []uint64{0, 0, 20, 60}
	return Knobs{
		Slaves:         1 + r.Intn(8),
		MaxTaskLen:     lens[r.Intn(len(lens))],
		MinTaskSpacing: spacings[r.Intn(len(spacings))],
		Stride:         strides[r.Intn(len(strides))],
		BiasThreshold:  biases[r.Intn(len(biases))],
		NonSpec:        r.Intn(4) == 0,
	}
}

// Config renders the knobs as a machine configuration.
func (k Knobs) Config() core.Config {
	cfg := core.DefaultConfig()
	cfg.Slaves = k.Slaves
	cfg.MaxTaskLen = k.MaxTaskLen
	cfg.MinTaskSpacing = k.MinTaskSpacing
	cfg.SquashPenalty = 50
	if k.NonSpec {
		// A small window of the shared array becomes "I/O": generated
		// accesses that land in it squash as nonspec and replay in
		// sequential mode.
		cfg.NonSpecRegions = []task.AddrRange{{Lo: genDataBase + 60, Hi: genDataBase + ArrWords}}
	}
	return cfg
}

// Run performs the three-way differential for one seed and returns the
// report. It never returns an error: every way the run can go wrong is a
// finding, recorded in Report.Failures.
func Run(opts Options) *Report {
	rep := &Report{Seed: opts.Seed, FaultIntensity: opts.FaultIntensity}
	failf := func(format string, args ...any) {
		rep.Failures = append(rep.Failures, fmt.Sprintf(format, args...))
	}
	maxSteps := opts.MaxSeqSteps
	if maxSteps == 0 {
		maxSteps = defaultMaxSeqSteps
	}
	if opts.ModelCheckCap == 0 {
		opts.ModelCheckCap = 256
	}

	g := GenerateOpts(opts.Seed, GenOptions{Taint: opts.Taint})
	rep.Gen = g.Config
	rep.Knobs = deriveKnobs(opts.Seed)

	// In taint mode each clean leg gets its own dynamic observer; fault
	// legs run unobserved (injection corrupts task starts, so their replays
	// would sit outside the static analysis's coverage argument).
	var cleanObs, parCleanObs *taint.Observer
	if opts.Taint {
		var terr error
		if cleanObs, terr = taint.NewObserver(g.Prog); terr != nil {
			failf("taint: observer: %v", terr)
			return rep
		}
		if parCleanObs, terr = taint.NewObserver(g.Prog); terr != nil {
			failf("taint: observer: %v", terr)
			return rep
		}
	}

	// Leg 1: sequential baseline. The generator guarantees termination;
	// trust but verify. Under -interp slow the baseline runs on the
	// per-step fetch+decode interpreter; the default uses the predecoded
	// devirtualized loop. The interpreter differential asserts the two
	// produce identical reports.
	baseline := state.NewFromProgram(g.Prog, core.DefaultConfig().SP)
	var n uint64
	var err error
	if opts.Interp == "slow" {
		var res cpu.RunResult
		res, err = cpu.Run(cpu.StateEnv{S: baseline}, maxSteps)
		n = res.Steps
	} else {
		n, err = cpu.Seq(baseline, maxSteps)
	}
	rep.SeqSteps = n
	if err != nil {
		failf("generator: sequential baseline faulted after %d steps: %v", n, err)
		return rep
	}
	if n >= maxSteps {
		failf("generator: program did not halt within %d steps", maxSteps)
		return rep
	}
	rep.SeqDigest = baseline.Digest()

	// Distill from a profile of the same program. Profiling reruns the
	// sequential execution, so its cost is bounded by the baseline's.
	prof, err := profile.Collect(g.Prog, profile.Options{Stride: rep.Knobs.Stride, MaxSteps: maxSteps + 1})
	if err != nil {
		failf("profile: %v", err)
		return rep
	}
	dist, err := distill.Distill(g.Prog, prof, distill.Options{
		BiasThreshold:    rep.Knobs.BiasThreshold,
		MinBranchCount:   4,
		DeadCodeElim:     opts.DistillPasses,
		SinkDeadStores:   opts.DistillPasses,
		ConstFold:        opts.DistillPasses,
		PredictableSlots: opts.Predict,
	})
	if err != nil {
		failf("distill: %v", err)
		return rep
	}

	// Legs 2 and 3: MSSP clean, then MSSP faulted.
	rep.Clean = runLeg(g, dist, rep.Knobs, nil, baseline, opts, "clean", cleanObs, failf)
	if opts.FaultIntensity > 0 {
		plan := &FaultPlan{Seed: opts.Seed, Intensity: opts.FaultIntensity}
		rep.Fault = runLeg(g, dist, rep.Knobs, plan, baseline, opts, "fault", nil, failf)
	}

	// Legs 4 and 5: the true-parallel engine, differentially against both
	// the sequential baseline and the deterministic machine's digests.
	switch opts.Engine {
	case "", EngineDet:
		parCleanObs = nil
	case EngineParallel:
		rep.ParClean = runParallelLeg(g, dist, rep.Knobs, nil, baseline, opts, "par-clean", parCleanObs, failf)
		if rep.Clean != nil && rep.ParClean.FinalDigest != rep.Clean.FinalDigest {
			failf("par-clean: final digest %x differs from deterministic machine's %x",
				rep.ParClean.FinalDigest, rep.Clean.FinalDigest)
		}
		if opts.FaultIntensity > 0 {
			plan := &FaultPlan{Seed: opts.Seed, Intensity: opts.FaultIntensity}
			rep.ParFault = runParallelLeg(g, dist, rep.Knobs, plan, baseline, opts, "par-fault", nil, failf)
			if rep.Fault != nil && rep.ParFault.FinalDigest != rep.Fault.FinalDigest {
				failf("par-fault: final digest %x differs from deterministic machine's %x",
					rep.ParFault.FinalDigest, rep.Fault.FinalDigest)
			}
		}
	default:
		failf("options: unknown engine %q", opts.Engine)
	}
	if opts.Taint {
		rep.Taint = taintVerdict(g, dist, rep, cleanObs, parCleanObs, failf)
	}
	rep.OK = len(rep.Failures) == 0
	return rep
}

// taintVerdict runs the static leak rules over the generated program, folds
// in the clean legs' dynamic observations, records gadget/flag coverage, and
// checks dominance: a static-clean program must have zero dynamic flags. Any
// violation is a seed failure — it means either the static analysis has a
// soundness hole or the observer over-approximates outside the lattice.
func taintVerdict(g *Generated, dist *distill.Result, rep *Report,
	cleanObs, parCleanObs *taint.Observer, failf func(string, ...any)) *TaintReport {

	tr := &TaintReport{SecretDeclared: g.Config.SecretDeclared, Flags: map[string]int{}}

	findings, err := vet.CheckTaint(g.Prog, vet.TaintOptions{Roots: dist.Anchors})
	if err != nil {
		failf("taint: static: %v", err)
		return tr
	}
	tr.StaticCount = len(findings)
	tr.StaticClean = len(findings) == 0
	for i, f := range findings {
		if i >= staticFindingsCap {
			break
		}
		tr.StaticFindings = append(tr.StaticFindings, f.String())
	}

	for _, o := range []*taint.Observer{cleanObs, parCleanObs} {
		if o == nil {
			continue
		}
		for k, n := range o.Counts() {
			tr.Flags[k] += n
			tr.FlagCount += n
		}
		r, t := o.Replayed()
		tr.Replayed += r
		tr.Truncated += t
	}
	if rep.Clean != nil {
		rep.Clean.Coverage.AddGadgets(g.Config.Gadgets)
		if cleanObs != nil {
			rep.Clean.Coverage.AddFlags(cleanObs.Counts())
		}
	}
	if rep.ParClean != nil && parCleanObs != nil {
		rep.ParClean.Coverage.AddFlags(parCleanObs.Counts())
	}

	tr.DominanceOK = !tr.StaticClean || tr.FlagCount == 0
	if !tr.DominanceOK {
		failf("taint: dominance violated: static-clean program dynamically flagged %v", tr.Flags)
	}
	return tr
}

// runParallelLeg executes one leg on the true-parallel engine under the
// streaming refinement auditor, the model shadow and the coverage sink. The
// audit pipeline is identical to runLeg's; only the machine differs — the
// auditors consume the engine-agnostic commit stream and cannot tell which
// machine produced it.
func runParallelLeg(g *Generated, dist *distill.Result, knobs Knobs, plan *FaultPlan,
	baseline *state.State, opts Options, leg string, tob *taint.Observer,
	failf func(string, ...any)) *LegReport {

	lr := &LegReport{Coverage: NewCoverage()}
	cfg := knobs.Config()
	cfg.DisableFastPath = opts.Interp == "slow"
	cfg.DisableFusion = opts.Fuse == "off"
	if plan != nil {
		cfg.Fault = plan.Injection()
	}
	unit := legUnit(&cfg, opts, dist)
	obs.Attach(&cfg, lr.Coverage)
	if opts.Observe != nil {
		opts.Observe(leg, &cfg)
	}

	shadow := newModelAudit(baselineStart(g), opts.ModelCheckCap)
	aud := refine.NewAuditor(g.Prog, cfg.SP, refine.Options{FullCheckEvery: 16, CheckTaskSafety: true})
	cfg.OnCommit = func(ev core.CommitEvent) {
		shadow.onCommit(ev)
		aud.OnCommit(ev)
	}
	if tob != nil {
		// After OnCommit is set: Attach chains over the existing handlers.
		tob.Attach(&cfg)
	}

	res, err := parallel.Run(g.Prog, dist, cfg)
	if err != nil {
		failf("%s: machine error: %v", leg, err)
		return lr
	}
	checkFaultGate(unit, plan, leg, failf)
	rrep := aud.Finish(res.Final)
	lr.Commits = rrep.Commits
	lr.RefineOK = rrep.OK
	lr.Metrics = res.Metrics.String()
	for _, v := range rrep.Violations {
		lr.Violations = append(lr.Violations, v.Error())
		failf("%s: refine: %v", leg, v)
	}
	lr.ModelChecked = shadow.checked
	for _, v := range shadow.violations {
		lr.ModelViolations = append(lr.ModelViolations, v)
		failf("%s: model: %s", leg, v)
	}
	lr.FinalMatchesSeq = res.Final.Equal(baseline)
	lr.FinalDigest = res.Final.Digest()
	if !lr.FinalMatchesSeq {
		failf("%s: final architected state differs from sequential baseline", leg)
	}
	return lr
}

// runLeg executes one MSSP leg under the refinement checker, the model
// shadow and the coverage sink, appending any divergence through failf.
func runLeg(g *Generated, dist *distill.Result, knobs Knobs, plan *FaultPlan,
	baseline *state.State, opts Options, leg string, tob *taint.Observer,
	failf func(string, ...any)) *LegReport {

	lr := &LegReport{Coverage: NewCoverage()}
	cfg := knobs.Config()
	cfg.DisableFastPath = opts.Interp == "slow"
	cfg.DisableFusion = opts.Fuse == "off"
	if plan != nil {
		cfg.Fault = plan.Injection()
	}
	unit := legUnit(&cfg, opts, dist)
	obs.Attach(&cfg, lr.Coverage)
	if opts.Observe != nil {
		opts.Observe(leg, &cfg)
	}

	// The model shadow: an independently advanced sequential state. For
	// every committed task it re-derives the task tuple from the formal
	// model (seq over a full live-in state) and checks the simulator's
	// sparse live-out superimposition against it — Definition 6 checked
	// with internal/model semantics rather than internal/refine's.
	shadow := newModelAudit(baselineStart(g), opts.ModelCheckCap)
	cfg.OnCommit = shadow.onCommit
	if tob != nil {
		// After OnCommit is set: Attach chains over the existing handlers.
		tob.Attach(&cfg)
	}

	rrep, err := refine.Check(g.Prog, dist, cfg, refine.Options{FullCheckEvery: 16, CheckTaskSafety: true})
	if err != nil {
		failf("%s: machine error: %v", leg, err)
		return lr
	}
	checkFaultGate(unit, plan, leg, failf)
	lr.Commits = rrep.Commits
	lr.RefineOK = rrep.OK
	lr.Metrics = rrep.Result.Metrics.String()
	for _, v := range rrep.Violations {
		lr.Violations = append(lr.Violations, v.Error())
		failf("%s: refine: %v", leg, v)
	}
	lr.ModelChecked = shadow.checked
	for _, v := range shadow.violations {
		lr.ModelViolations = append(lr.ModelViolations, v)
		failf("%s: model: %s", leg, v)
	}
	lr.FinalMatchesSeq = rrep.Result.Final.Equal(baseline)
	lr.FinalDigest = rrep.Result.Final.Digest()
	if !lr.FinalMatchesSeq {
		failf("%s: final architected state differs from sequential baseline", leg)
	}
	return lr
}

// baselineStart returns a fresh initial state for the generated program.
func baselineStart(g *Generated) *state.State {
	return state.NewFromProgram(g.Prog, core.DefaultConfig().SP)
}

// legUnit attaches a fresh predictor unit to one leg's configuration when
// Options.Predict is on, returning it for the post-run fault-gate check.
// The kind derives from the seed so a soak sweeps the whole predictor
// lattice; every leg gets its own unit, keeping legs independent.
func legUnit(cfg *core.Config, opts Options, dist *distill.Result) *predict.Unit {
	if !opts.Predict {
		return nil
	}
	po := predict.DefaultOptions()
	po.Kind = predict.AllKinds[opts.Seed%uint64(len(predict.AllKinds))]
	po.PredictableRegs = dist.PredictableRegs
	u := predict.NewUnit(po)
	cfg.Predictor = u
	return u
}

// checkFaultGate asserts the predictor-under-faults contract: a unit
// attached to a fault-injected leg must come out of the run exactly as it
// went in — never consulted, never trained — because a checkpoint corrupted
// by injection must not be able to poison the table (the engines gate
// prediction off entirely when Config.Fault is set, mirroring shareCk).
func checkFaultGate(unit *predict.Unit, plan *FaultPlan, leg string, failf func(string, ...any)) {
	if unit == nil || plan == nil {
		return
	}
	if st := unit.Stats(); st.Verifies != 0 || st.Cells != 0 {
		failf("%s: fault injection reached the predictor (verifies=%d cells=%d); the fault gate is broken",
			leg, st.Verifies, st.Cells)
	}
}

// modelAudit is the internal/model task-safety shadow: it tracks its own
// sequential state and, for each committed task, checks that superimposing
// the simulator's live-out delta equals completing the formal model's task
// tuple — two independently computed post-states that must agree.
type modelAudit struct {
	ref        *state.State
	cap        int
	checked    int
	violations []string
}

func newModelAudit(start *state.State, cap int) *modelAudit {
	return &modelAudit{ref: start, cap: cap}
}

func (a *modelAudit) onCommit(ev core.CommitEvent) {
	if ev.Kind != "task" || a.checked >= a.cap {
		// Fallback chunks (and commits past the cap) just advance the
		// shadow; the refinement checker still audits them.
		if _, err := cpu.Seq(a.ref, ev.Steps); err != nil {
			a.violations = append(a.violations, fmt.Sprintf("shadow advance faulted: %v", err))
		}
		return
	}
	a.checked++
	t := model.NewTask(a.ref.Clone(), ev.Steps)
	if err := t.Complete(); err != nil {
		a.violations = append(a.violations, fmt.Sprintf("commit %d: model task evolution: %v", a.checked, err))
		return
	}
	applied := a.ref.Clone()
	applied.Apply(ev.LiveOut)
	if !applied.Equal(t.Out) {
		a.violations = append(a.violations,
			fmt.Sprintf("commit %d (task %d, %d steps): S ← live_out(t) differs from seq(S, #t)",
				a.checked, ev.TaskID, ev.Steps))
	}
	a.ref = t.Out
}
