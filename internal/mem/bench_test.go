package mem

import "testing"

// Benchmarks for the memory layer's hot paths: cached reads and writes,
// snapshot churn (the per-spawn cost in the machine), and whole-image
// comparison. cmd/msspbench reruns these to produce BENCH_core.json.

// BenchmarkReadHit measures a read that hits the one-entry page cache — the
// dominant case in sequential MIR execution.
func BenchmarkReadHit(b *testing.B) {
	m := New()
	m.Write(4096, 7)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += m.Read(4096 + uint64(i&pageMask))
	}
	_ = sink
}

// BenchmarkReadSpread strides across 64 pages, defeating the cache, to keep
// the map-lookup slow path measured.
func BenchmarkReadSpread(b *testing.B) {
	m := New()
	for pn := uint64(0); pn < 64; pn++ {
		m.Write(pn*PageWords, pn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += m.Read(uint64(i&63) * PageWords)
	}
	_ = sink
}

// BenchmarkWriteHit measures a write into the exclusively-owned cached page.
func BenchmarkWriteHit(b *testing.B) {
	m := New()
	m.Write(4096, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Write(4096+uint64(i&pageMask), uint64(i))
	}
}

// BenchmarkSnapshotChurn measures the machine's per-spawn pattern: snapshot
// the image, then write it (forcing one page copy-on-write). This is the
// cost the task-spawn path pays per architected snapshot.
func BenchmarkSnapshotChurn(b *testing.B) {
	m := New()
	for pn := uint64(0); pn < 16; pn++ {
		m.Write(pn*PageWords, pn+1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := m.Snapshot()
		snap.Write(0, uint64(i))
	}
}

// BenchmarkEqualShared compares a snapshot against its parent — the
// pointer-equality fast path the verifiers lean on.
func BenchmarkEqualShared(b *testing.B) {
	m := New()
	for pn := uint64(0); pn < 16; pn++ {
		m.Write(pn*PageWords, pn+1)
	}
	snap := m.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.Equal(snap) {
			b.Fatal("snapshot differs from parent")
		}
	}
}

// BenchmarkOverlaySetGet measures the overlay fast paths used by slave write
// buffers and master write logs.
func BenchmarkOverlaySetGet(b *testing.B) {
	o := NewOverlay()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := uint64(i & pageMask)
		o.Set(a, uint64(i))
		if _, ok := o.Get(a); !ok {
			b.Fatal("missing just-written cell")
		}
	}
}

// TestMemOpsZeroAlloc pins the allocation-free property of the cached
// access paths after warm-up.
func TestMemOpsZeroAlloc(t *testing.T) {
	m := New()
	m.Write(4096, 7)
	if allocs := testing.AllocsPerRun(100, func() {
		m.Write(4100, m.Read(4096)+1)
	}); allocs != 0 {
		t.Fatalf("cached read/write allocates: %v allocs/op, want 0", allocs)
	}
	o := NewOverlay()
	o.Set(1, 1)
	if allocs := testing.AllocsPerRun(100, func() {
		v, _ := o.Get(1)
		o.Set(1, v+1)
	}); allocs != 0 {
		t.Fatalf("overlay get/set allocates: %v allocs/op, want 0", allocs)
	}
}
