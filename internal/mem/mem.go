// Package mem provides the memory structures the MSSP simulator is built on:
// a sparse, word-addressed 64-bit memory with O(pages) copy-on-write
// snapshots (Memory), and a sparse overlay that additionally distinguishes
// "written" from "zero" cells (Overlay).
//
// Snapshots are the workhorse of the simulator. Architected state is
// snapshotted at every task spawn so that slave processors read the state the
// machine was in when the master forked them — exactly the stale-read hazard
// the MSSP verify/commit unit exists to catch. The master's write log is an
// Overlay snapshotted at every fork to form the checkpoint's live-in diff.
//
// Both structures carry a one-entry last-page cache on their access paths
// (see docs/PERFORMANCE.md): the common sequential / stack-local access
// patterns of MIR programs hit the same page repeatedly, and the cache
// turns those accesses from a map lookup into a pointer compare. The caches
// are invalidated on Snapshot, which is what keeps them coherent with
// copy-on-write sharing.
//
// # Concurrency contract
//
// The true-parallel engine (internal/parallel, see docs/PARALLEL.md) runs
// snapshots of one family on different goroutines, so the sharing rules are
// load-bearing rather than theoretical:
//
//   - A single Memory or Overlay value is goroutine-confined. The page
//     caches make even Read/Get mutating operations, so one value must
//     never be touched by two goroutines, even read-only.
//   - Distinct members of one snapshot family may be used — including
//     Snapshot itself — from different goroutines concurrently, provided
//     each value is handed off with ordinary happens-before edges (channel
//     send, mutex). The shared generation counter is advanced atomically,
//     so generations stay unique family-wide; in-place page writes only
//     ever hit pages whose generation matches the writing value's own
//     (exclusively owned pages), and shared pages are only ever read.
//   - A logically frozen Overlay (one nobody will mutate again, such as a
//     checkpoint diff) may be read from many goroutines at once through
//     per-goroutine OverlayReader cursors, which keep their page cache on
//     the reader instead of the overlay.
//
// Reset and SnapshotInto recycle allocations across lives (pooled task
// machinery); their safety rests on the same generation tags. The full
// lifecycle, pooling and aliasing contract lives in docs/MEMORY.md.
package mem

import "sync/atomic"

// PageWords is the number of 64-bit words per page. Pages are the unit of
// copy-on-write sharing.
const PageWords = 1024

const (
	pageShift = 10
	pageMask  = PageWords - 1
)

type page struct {
	gen  uint64
	data [PageWords]uint64
}

// zeroPageData is the all-zero page contents, for fast whole-page compares.
var zeroPageData [PageWords]uint64

// Memory is a sparse word-addressed memory. Absent words read as zero.
//
// A Memory value and its snapshots share pages copy-on-write: Snapshot is
// O(number of pages), and the first write to a shared page after a snapshot
// copies that page. The zero value... is not usable; call New.
//
// A Memory is not safe for concurrent use; the page caches make even Read
// a mutating operation. Snapshots are independent values and may be used
// from different goroutines.
type Memory struct {
	pages map[uint64]*page
	gen   uint64
	// genCounter is shared across a snapshot family so generations stay
	// unique even when snapshots of snapshots are taken. It is advanced
	// atomically so family members on different goroutines can snapshot
	// concurrently (see the package concurrency contract).
	genCounter *uint64

	// Last-page caches. Invariants, whenever the pointers are non-nil:
	// readPg == pages[readPN], and writePg == pages[writePN] with
	// writePg.gen == gen (the page is exclusively owned, so writing
	// through the cache can never clobber a snapshot). Snapshot changes
	// gen and therefore drops both caches.
	readPN  uint64
	readPg  *page
	writePN uint64
	writePg *page
}

// New returns an empty memory.
func New() *Memory {
	var ctr uint64 = 1
	return &Memory{pages: make(map[uint64]*page), gen: 1, genCounter: &ctr}
}

// Read returns the word at addr (zero if never written).
func (m *Memory) Read(addr uint64) uint64 {
	pn := addr >> pageShift
	if p := m.readPg; p != nil && pn == m.readPN {
		return p.data[addr&pageMask]
	}
	p, ok := m.pages[pn]
	if !ok {
		return 0
	}
	m.readPg, m.readPN = p, pn
	return p.data[addr&pageMask]
}

// Write stores v at addr, copying the containing page if it is shared with
// a snapshot.
func (m *Memory) Write(addr uint64, v uint64) {
	pn := addr >> pageShift
	if p := m.writePg; p != nil && pn == m.writePN {
		p.data[addr&pageMask] = v
		return
	}
	p, ok := m.pages[pn]
	switch {
	case !ok:
		if v == 0 {
			return // writing zero to an absent page is a no-op
		}
		p = &page{gen: m.gen}
		m.pages[pn] = p
	case p.gen != m.gen:
		cp := *p
		cp.gen = m.gen
		p = &cp
		m.pages[pn] = p
	}
	p.data[addr&pageMask] = v
	m.writePg, m.writePN = p, pn
	// Keep the read cache coherent: a copy-on-write just replaced the page
	// the read cache may be holding.
	if m.readPg != nil && m.readPN == pn {
		m.readPg = p
	}
}

// Snapshot returns a logically independent copy of the memory. The copy and
// the receiver share pages until either side writes.
//
// Snapshot may be called concurrently on different members of one family
// (the generation counter is atomic); the receiver itself must still be
// goroutine-confined.
func (m *Memory) Snapshot() *Memory {
	// One atomic bump hands out two fresh generations: one for the clone,
	// one for the receiver (which must also stop writing into now-shared
	// pages in place).
	gen := atomic.AddUint64(m.genCounter, 2)
	clone := &Memory{
		pages:      make(map[uint64]*page, len(m.pages)),
		gen:        gen - 1,
		genCounter: m.genCounter,
	}
	for pn, p := range m.pages {
		clone.pages[pn] = p
	}
	m.gen = gen
	m.readPg = nil
	m.writePg = nil
	return clone
}

// SnapshotInto is Snapshot with the clone's allocations recycled from dst:
// dst's page map is cleared and refilled (keeping its buckets) and dst is
// adopted into m's snapshot family. It exists for the task pools
// (internal/task.Pool), which re-issue the same architected-snapshot value
// life after life instead of allocating a map per spawn; in steady state the
// call allocates nothing.
//
// dst must be retired: no goroutine may still use it, and it must not alias
// a value anyone else holds. Its previous page references are dropped
// (copy-on-write siblings keep their own). A nil dst falls back to a plain
// Snapshot. See docs/MEMORY.md for the pooling contract.
func (m *Memory) SnapshotInto(dst *Memory) *Memory {
	if dst == nil || dst == m {
		return m.Snapshot()
	}
	gen := atomic.AddUint64(m.genCounter, 2)
	clear(dst.pages)
	for pn, p := range m.pages {
		dst.pages[pn] = p
	}
	dst.gen = gen - 1
	dst.genCounter = m.genCounter
	dst.readPg = nil
	dst.writePg = nil
	m.gen = gen
	m.readPg = nil
	m.writePg = nil
	return dst
}

// CopyWords bulk-writes words starting at base. Used to load program images.
func (m *Memory) CopyWords(base uint64, words []uint64) {
	for i, w := range words {
		m.Write(base+uint64(i), w)
	}
}

// PageCount returns the number of materialized pages (for metrics).
func (m *Memory) PageCount() int { return len(m.pages) }

// Equal reports whether two memories hold identical contents. Pages absent
// on one side compare equal to all-zero pages on the other.
func (m *Memory) Equal(o *Memory) bool {
	return m.subsetZero(o) && o.subsetZero(m)
}

// subsetZero checks every page of m against o, treating absence as zeros.
func (m *Memory) subsetZero(o *Memory) bool {
	for pn, p := range m.pages {
		q, ok := o.pages[pn]
		if ok {
			if p == q {
				continue
			}
			if p.data != q.data {
				return false
			}
			continue
		}
		if p.data != zeroPageData {
			return false
		}
	}
	return true
}

// Diff calls f for every address whose value differs between m and o,
// passing the values in each. Useful for debugging refinement failures.
// Iteration order is unspecified. Diff allocates nothing: membership in m
// is checked directly instead of through a scratch set.
func (m *Memory) Diff(o *Memory, f func(addr uint64, mv, ov uint64)) {
	for pn, p := range m.pages {
		q := o.pages[pn]
		if q != nil && (p == q || p.data == q.data) {
			continue
		}
		for i := 0; i < PageWords; i++ {
			var ov uint64
			if q != nil {
				ov = q.data[i]
			}
			if p.data[i] != ov {
				f(pn<<pageShift|uint64(i), p.data[i], ov)
			}
		}
	}
	for pn, q := range o.pages {
		if _, ok := m.pages[pn]; ok {
			continue
		}
		if q.data == zeroPageData {
			continue
		}
		for i := 0; i < PageWords; i++ {
			if q.data[i] != 0 {
				f(pn<<pageShift|uint64(i), 0, q.data[i])
			}
		}
	}
}
