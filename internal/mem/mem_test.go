package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMemoryReadWrite(t *testing.T) {
	m := New()
	if got := m.Read(123); got != 0 {
		t.Fatalf("fresh memory read = %d, want 0", got)
	}
	m.Write(123, 7)
	m.Write(0, 1)
	m.Write(1<<40, 9) // far page
	if m.Read(123) != 7 || m.Read(0) != 1 || m.Read(1<<40) != 9 {
		t.Error("read-after-write broken")
	}
	m.Write(123, 8)
	if m.Read(123) != 8 {
		t.Error("overwrite broken")
	}
}

func TestMemoryZeroWriteToAbsentPage(t *testing.T) {
	m := New()
	m.Write(5000, 0)
	if m.PageCount() != 0 {
		t.Error("writing zero materialized a page")
	}
	if m.Read(5000) != 0 {
		t.Error("zero read broken")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	m := New()
	m.Write(10, 1)
	m.Write(2000, 2)

	s := m.Snapshot()
	// Writes to the original must not appear in the snapshot.
	m.Write(10, 100)
	m.Write(3000, 3)
	if s.Read(10) != 1 || s.Read(2000) != 2 || s.Read(3000) != 0 {
		t.Error("snapshot sees writes made after it was taken")
	}
	// Writes to the snapshot must not appear in the original.
	s.Write(2000, 200)
	if m.Read(2000) != 2 {
		t.Error("original sees snapshot writes")
	}
	if m.Read(10) != 100 || m.Read(3000) != 3 {
		t.Error("original lost its own writes")
	}
}

func TestSnapshotChain(t *testing.T) {
	m := New()
	snaps := make([]*Memory, 0, 10)
	for i := uint64(0); i < 10; i++ {
		m.Write(i, i+1)
		snaps = append(snaps, m.Snapshot())
	}
	for i, s := range snaps {
		for j := uint64(0); j < 10; j++ {
			want := uint64(0)
			if j <= uint64(i) {
				want = j + 1
			}
			if got := s.Read(j); got != want {
				t.Fatalf("snap %d read(%d) = %d, want %d", i, j, got, want)
			}
		}
	}
	// Snapshot of a snapshot must also be isolated.
	ss := snaps[5].Snapshot()
	snaps[5].Write(3, 999)
	if ss.Read(3) != 4 {
		t.Error("snapshot-of-snapshot sees parent writes")
	}
}

func TestMemoryEqual(t *testing.T) {
	a, b := New(), New()
	if !a.Equal(b) {
		t.Error("empty memories unequal")
	}
	a.Write(7, 1)
	if a.Equal(b) {
		t.Error("different memories equal")
	}
	b.Write(7, 1)
	if !a.Equal(b) {
		t.Error("same contents unequal")
	}
	// A page of explicit zeros equals an absent page.
	a.Write(9000, 5)
	a.Write(9000, 0)
	if !a.Equal(b) {
		t.Error("explicit zero page should equal absent page")
	}
	b.Write(12345, 1)
	if a.Equal(b) {
		t.Error("extra nonzero word on other side should be unequal")
	}
}

func TestMemoryDiff(t *testing.T) {
	a, b := New(), New()
	a.Write(1, 10)
	b.Write(1, 20)
	b.Write(5000, 7)
	got := map[uint64][2]uint64{}
	a.Diff(b, func(addr uint64, av, bv uint64) { got[addr] = [2]uint64{av, bv} })
	want := map[uint64][2]uint64{1: {10, 20}, 5000: {0, 7}}
	if len(got) != len(want) {
		t.Fatalf("diff = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("diff[%d] = %v, want %v", k, got[k], v)
		}
	}
}

func TestCopyWords(t *testing.T) {
	m := New()
	m.CopyWords(100, []uint64{1, 2, 3})
	for i := uint64(0); i < 3; i++ {
		if m.Read(100+i) != i+1 {
			t.Fatal("CopyWords broken")
		}
	}
}

// Property: a memory behaves like a map with zero default, across snapshots.
func TestMemoryVsModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New()
		model := map[uint64]uint64{}
		type snap struct {
			m     *Memory
			model map[uint64]uint64
		}
		var snaps []snap
		for i := 0; i < 300; i++ {
			addr := uint64(rng.Intn(5000))
			switch rng.Intn(10) {
			case 0: // snapshot
				mc := map[uint64]uint64{}
				for k, v := range model {
					mc[k] = v
				}
				snaps = append(snaps, snap{m.Snapshot(), mc})
			case 1, 2, 3: // read
				if m.Read(addr) != model[addr] {
					return false
				}
			default: // write
				v := rng.Uint64() % 100
				m.Write(addr, v)
				model[addr] = v
			}
		}
		for _, s := range snaps {
			for k, v := range s.model {
				if s.m.Read(k) != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOverlayBasics(t *testing.T) {
	o := NewOverlay()
	if _, ok := o.Get(1); ok {
		t.Error("fresh overlay has entries")
	}
	o.Set(1, 0) // explicit zero must be present
	if v, ok := o.Get(1); !ok || v != 0 {
		t.Error("explicit zero not distinguishable from absent")
	}
	o.Set(1, 5)
	o.Set(70, 6)
	if o.Len() != 2 {
		t.Errorf("Len = %d, want 2", o.Len())
	}
	if v, _ := o.Get(1); v != 5 {
		t.Error("overwrite broken")
	}
}

func TestOverlaySnapshotIsolation(t *testing.T) {
	o := NewOverlay()
	o.Set(1, 1)
	s := o.Snapshot()
	o.Set(1, 2)
	o.Set(2, 3)
	if v, _ := s.Get(1); v != 1 {
		t.Error("overlay snapshot sees later writes")
	}
	if _, ok := s.Get(2); ok {
		t.Error("overlay snapshot sees later additions")
	}
	s.Set(9, 9)
	if _, ok := o.Get(9); ok {
		t.Error("original sees snapshot writes")
	}
	if s.Len() != 2 || o.Len() != 2 {
		t.Errorf("Len after snapshot writes: s=%d o=%d, want 2,2", s.Len(), o.Len())
	}
}

func TestOverlayRange(t *testing.T) {
	o := NewOverlay()
	want := map[uint64]uint64{0: 5, 63: 1, 64: 2, 1023: 3, 1024: 4, 99999: 6}
	for k, v := range want {
		o.Set(k, v)
	}
	got := map[uint64]uint64{}
	o.Range(func(a, v uint64) bool { got[a] = v; return true })
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Range[%d] = %d, want %d", k, got[k], v)
		}
	}
	// Early stop.
	n := 0
	o.Range(func(a, v uint64) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d, want 3", n)
	}
}

func TestOverlayClear(t *testing.T) {
	o := NewOverlay()
	o.Set(1, 1)
	s := o.Snapshot()
	o.Clear()
	if o.Len() != 0 {
		t.Error("Clear did not empty overlay")
	}
	if _, ok := o.Get(1); ok {
		t.Error("Clear left entries behind")
	}
	if v, ok := s.Get(1); !ok || v != 1 {
		t.Error("Clear damaged outstanding snapshot")
	}
	o.Set(2, 2)
	if v, ok := o.Get(2); !ok || v != 2 {
		t.Error("overlay unusable after Clear")
	}
}

func TestOverlayVsModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := NewOverlay()
		model := map[uint64]uint64{}
		for i := 0; i < 400; i++ {
			addr := uint64(rng.Intn(3000))
			if rng.Intn(3) == 0 {
				v, ok := o.Get(addr)
				mv, mok := model[addr]
				if ok != mok || v != mv {
					return false
				}
			} else {
				v := rng.Uint64() % 50
				o.Set(addr, v)
				model[addr] = v
			}
		}
		if o.Len() != len(model) {
			return false
		}
		n := 0
		ok := true
		o.Range(func(a, v uint64) bool {
			n++
			if mv, present := model[a]; !present || mv != v {
				ok = false
			}
			return true
		})
		return ok && n == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMemoryWrite(b *testing.B) {
	m := New()
	for i := 0; i < b.N; i++ {
		m.Write(uint64(i)&0xffff, uint64(i))
	}
}

func BenchmarkMemorySnapshotAndWrite(b *testing.B) {
	m := New()
	for i := uint64(0); i < 1<<16; i++ {
		m.Write(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := m.Snapshot()
		s.Write(uint64(i)&0xffff, 1)
	}
}
