package mem

import (
	"sync"
	"testing"
)

func TestOverlayReset(t *testing.T) {
	o := NewOverlay()
	o.Set(1, 1)
	o.Set(2000, 2)
	s := o.Snapshot()
	o.Set(3, 3) // CoW-copies page 0: owned again after the snapshot

	o.Reset()
	if o.Len() != 0 {
		t.Errorf("Len after Reset = %d, want 0", o.Len())
	}
	for _, a := range []uint64{1, 3, 2000} {
		if _, ok := o.Get(a); ok {
			t.Errorf("Reset left addr %d behind", a)
		}
	}
	// The outstanding snapshot must be untouched.
	if v, ok := s.Get(1); !ok || v != 1 {
		t.Error("Reset damaged snapshot at addr 1")
	}
	if v, ok := s.Get(2000); !ok || v != 2 {
		t.Error("Reset damaged snapshot at addr 2000")
	}
	if _, ok := s.Get(3); ok {
		t.Error("snapshot sees post-snapshot write after Reset")
	}
	// Overlay stays usable and isolated.
	o.Set(1, 9)
	if v, _ := o.Get(1); v != 9 {
		t.Error("overlay unusable after Reset")
	}
	if v, _ := s.Get(1); v != 1 {
		t.Error("post-Reset write leaked into snapshot")
	}
}

// Reset must reuse exclusively owned pages: a Set/Reset cycle over the same
// addresses allocates nothing in steady state.
func TestOverlayResetSteadyStateAllocs(t *testing.T) {
	o := NewOverlay()
	allocs := testing.AllocsPerRun(100, func() {
		for a := uint64(0); a < 64; a++ {
			o.Set(a, a)
			o.Set(5000+a, a)
		}
		o.Reset()
	})
	if allocs != 0 {
		t.Errorf("Set/Reset cycle allocates %v per run, want 0", allocs)
	}
}

func TestOverlaySetIfAbsent(t *testing.T) {
	o := NewOverlay()
	if !o.SetIfAbsent(10, 1) {
		t.Error("SetIfAbsent on absent word returned false")
	}
	if o.SetIfAbsent(10, 2) {
		t.Error("SetIfAbsent on present word returned true")
	}
	if v, ok := o.Get(10); !ok || v != 1 {
		t.Errorf("Get(10) = %d,%v; want 1,true", v, ok)
	}
	if o.Len() != 1 {
		t.Errorf("Len = %d, want 1", o.Len())
	}

	// Present word on a shared page: must refuse without copying the page.
	s := o.Snapshot()
	pages := len(o.pages)
	before := o.pages[10>>pageShift]
	if o.SetIfAbsent(10, 3) {
		t.Error("SetIfAbsent stored over a present word on a shared page")
	}
	if o.pages[10>>pageShift] != before || len(o.pages) != pages {
		t.Error("SetIfAbsent copy-on-wrote a page it never needed to write")
	}

	// Absent word on a shared page: must CoW and leave the snapshot alone.
	if !o.SetIfAbsent(11, 4) {
		t.Error("SetIfAbsent on absent word of shared page returned false")
	}
	if _, ok := s.Get(11); ok {
		t.Error("SetIfAbsent write leaked into snapshot")
	}
	if v, ok := o.Get(11); !ok || v != 4 {
		t.Error("SetIfAbsent write lost after CoW")
	}
}

func TestOverlayVersion(t *testing.T) {
	o := NewOverlay()
	v0 := o.Version()
	o.Set(1, 1)
	if o.Version() == v0 {
		t.Error("Set did not advance version")
	}
	v1 := o.Version()
	_ = o.Snapshot()
	if o.Version() != v1 {
		t.Error("Snapshot changed version")
	}
	if o.SetIfAbsent(1, 2) || o.Version() != v1 {
		t.Error("no-op SetIfAbsent advanced version")
	}
	o.SetIfAbsent(2, 2)
	if o.Version() == v1 {
		t.Error("binding SetIfAbsent did not advance version")
	}
	v2 := o.Version()
	o.Reset()
	if o.Version() == v2 {
		t.Error("Reset did not advance version")
	}
	v3 := o.Version()
	o.Clear()
	if o.Version() == v3 {
		t.Error("Clear did not advance version")
	}
}

func TestOverlayReader(t *testing.T) {
	o := NewOverlay()
	o.Set(1, 10)
	o.Set(2000, 20)
	var r OverlayReader
	r.Init(o)
	if v, ok := r.Get(1); !ok || v != 10 {
		t.Errorf("reader Get(1) = %d,%v; want 10,true", v, ok)
	}
	if v, ok := r.Get(2000); !ok || v != 20 {
		t.Errorf("reader Get(2000) = %d,%v; want 20,true", v, ok)
	}
	if _, ok := r.Get(2); ok {
		t.Error("reader found phantom binding")
	}
	if _, ok := r.Get(1 << 30); ok {
		t.Error("reader found phantom page")
	}
	// Reads must not disturb the overlay's own caches (Get stays coherent).
	if v, ok := o.Get(1); !ok || v != 10 {
		t.Error("overlay broken after reader use")
	}
}

// Many goroutines reading one frozen overlay through per-reader cursors is
// exactly how slaves consult a shared checkpoint diff; under -race this test
// proves the reads race with nothing.
func TestOverlayReaderConcurrent(t *testing.T) {
	o := NewOverlay()
	for a := uint64(0); a < 4*PageWords; a += 3 {
		o.Set(a, a+7)
	}
	frozen := o.Snapshot()

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var r OverlayReader
			r.Init(frozen)
			for a := uint64(0); a < 4*PageWords; a++ {
				v, ok := r.Get(a)
				if a%3 == 0 {
					if !ok || v != a+7 {
						errs <- "reader missed a binding"
						return
					}
				} else if ok {
					errs <- "reader found phantom binding"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestSnapshotInto(t *testing.T) {
	m := New()
	m.Write(1, 1)
	m.Write(2000, 2)

	if s := m.SnapshotInto(nil); s.Read(1) != 1 {
		t.Error("SnapshotInto(nil) broken")
	}

	dst := New()
	dst.Write(77, 77) // stale content that must vanish
	s := m.SnapshotInto(dst)
	if s != dst {
		t.Error("SnapshotInto did not return dst")
	}
	if s.Read(1) != 1 || s.Read(2000) != 2 || s.Read(77) != 0 {
		t.Error("SnapshotInto contents wrong")
	}
	// Isolation both ways, as with Snapshot.
	m.Write(1, 100)
	if s.Read(1) != 1 {
		t.Error("SnapshotInto copy sees later source writes")
	}
	s.Write(2000, 200)
	if m.Read(2000) != 2 {
		t.Error("source sees SnapshotInto copy writes")
	}
	// The copy joined the family: snapshotting it keeps generations unique.
	ss := s.Snapshot()
	s.Write(1, 5)
	if ss.Read(1) != 1 {
		t.Error("snapshot of recycled copy sees parent writes")
	}
}

func TestSnapshotIntoSteadyStateAllocs(t *testing.T) {
	m := New()
	for a := uint64(0); a < 4*PageWords; a += 9 {
		m.Write(a, a)
	}
	dst := New()
	allocs := testing.AllocsPerRun(100, func() {
		dst = m.SnapshotInto(dst)
	})
	if allocs != 0 {
		t.Errorf("steady-state SnapshotInto allocates %v per run, want 0", allocs)
	}
}
