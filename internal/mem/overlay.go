package mem

import (
	"math/bits"
	"sync/atomic"
)

type opage struct {
	gen     uint64
	present [PageWords / 64]uint64
	data    [PageWords]uint64
}

// Overlay is a sparse word-addressed map from address to value that, unlike
// Memory, distinguishes "written with zero" from "never written". It supports
// the same O(pages) copy-on-write Snapshot.
//
// Overlays model the master processor's write log: at each fork point the
// current overlay snapshot becomes the checkpoint's memory live-in diff, and
// slave reads consult it before falling back to the architected snapshot.
//
// Like Memory, an Overlay carries one-entry last-page caches on Get and Set
// (invalidated on Snapshot and Clear), so repeated accesses to one page —
// the dominant pattern in slave write buffers and live-in sets — skip the
// page map. The caches make Get a mutating operation: an Overlay is not
// safe for concurrent use, but snapshots are independent values and follow
// the package-level concurrency contract (atomic generation counter, so
// different family members may be used and snapshotted from different
// goroutines).
type Overlay struct {
	pages      map[uint64]*opage
	gen        uint64
	genCounter *uint64
	count      int // number of present words

	// Last-page caches; same invariants as Memory's: getPg ==
	// pages[getPN], setPg == pages[setPN] with setPg.gen == gen.
	getPN uint64
	getPg *opage
	setPN uint64
	setPg *opage
}

// NewOverlay returns an empty overlay.
func NewOverlay() *Overlay {
	var ctr uint64 = 1
	return &Overlay{pages: make(map[uint64]*opage), gen: 1, genCounter: &ctr}
}

// Get returns the value at addr and whether it is present.
func (o *Overlay) Get(addr uint64) (uint64, bool) {
	pn := addr >> pageShift
	p := o.getPg
	if p == nil || pn != o.getPN {
		var ok bool
		p, ok = o.pages[pn]
		if !ok {
			return 0, false
		}
		o.getPg, o.getPN = p, pn
	}
	idx := addr & pageMask
	if p.present[idx/64]&(1<<(idx%64)) == 0 {
		return 0, false
	}
	return p.data[idx], true
}

// Set stores v at addr.
func (o *Overlay) Set(addr uint64, v uint64) {
	pn := addr >> pageShift
	p := o.setPg
	if p == nil || pn != o.setPN {
		var ok bool
		p, ok = o.pages[pn]
		switch {
		case !ok:
			p = &opage{gen: o.gen}
			o.pages[pn] = p
		case p.gen != o.gen:
			cp := *p
			cp.gen = o.gen
			p = &cp
			o.pages[pn] = p
		}
		o.setPg, o.setPN = p, pn
		// A copy-on-write may have replaced the page the get cache holds.
		if o.getPg != nil && o.getPN == pn {
			o.getPg = p
		}
	}
	idx := addr & pageMask
	if p.present[idx/64]&(1<<(idx%64)) == 0 {
		p.present[idx/64] |= 1 << (idx % 64)
		o.count++
	}
	p.data[idx] = v
}

// Len returns the number of present words.
func (o *Overlay) Len() int { return o.count }

// Snapshot returns a logically independent copy sharing pages copy-on-write.
// As with Memory.Snapshot, distinct family members may snapshot concurrently.
func (o *Overlay) Snapshot() *Overlay {
	gen := atomic.AddUint64(o.genCounter, 2)
	clone := &Overlay{
		pages:      make(map[uint64]*opage, len(o.pages)),
		gen:        gen - 1,
		genCounter: o.genCounter,
		count:      o.count,
	}
	for pn, p := range o.pages {
		clone.pages[pn] = p
	}
	o.gen = gen
	o.getPg = nil
	o.setPg = nil
	return clone
}

// Range calls f for every present (addr, value) pair until f returns false.
// Iteration order is unspecified.
func (o *Overlay) Range(f func(addr uint64, v uint64) bool) {
	for pn, p := range o.pages {
		for w, mask := range p.present {
			for mask != 0 {
				b := bits.TrailingZeros64(mask)
				mask &^= 1 << b
				idx := uint64(w*64 + b)
				if !f(pn<<pageShift|idx, p.data[idx]) {
					return
				}
			}
		}
	}
}

// Clear removes all entries. The overlay remains usable and keeps its
// snapshot family, so outstanding snapshots are unaffected.
func (o *Overlay) Clear() {
	o.pages = make(map[uint64]*opage)
	o.gen = atomic.AddUint64(o.genCounter, 1)
	o.count = 0
	o.getPg = nil
	o.setPg = nil
}
