package mem

import (
	"math/bits"
	"sync/atomic"
)

type opage struct {
	gen     uint64
	present [PageWords / 64]uint64
	data    [PageWords]uint64
}

// Overlay is a sparse word-addressed map from address to value that, unlike
// Memory, distinguishes "written with zero" from "never written". It supports
// the same O(pages) copy-on-write Snapshot.
//
// Overlays model the master processor's write log: at each fork point the
// current overlay snapshot becomes the checkpoint's memory live-in diff, and
// slave reads consult it before falling back to the architected snapshot.
//
// Like Memory, an Overlay carries one-entry last-page caches on Get and Set
// (invalidated on Snapshot and Clear), so repeated accesses to one page —
// the dominant pattern in slave write buffers and live-in sets — skip the
// page map. The caches make Get a mutating operation: an Overlay is not
// safe for concurrent use, but snapshots are independent values and follow
// the package-level concurrency contract (atomic generation counter, so
// different family members may be used and snapshotted from different
// goroutines).
type Overlay struct {
	pages      map[uint64]*opage
	gen        uint64
	genCounter *uint64
	count      int // number of present words
	// version counts content mutations (Set, Clear, Reset). Snapshot leaves
	// it unchanged: equal versions across a snapshot mean equal contents,
	// which is what lets checkpoint producers reuse a previous snapshot
	// verbatim (see docs/MEMORY.md).
	version uint64

	// Last-page caches; same invariants as Memory's: getPg ==
	// pages[getPN], setPg == pages[setPN] with setPg.gen == gen.
	getPN uint64
	getPg *opage
	setPN uint64
	setPg *opage
}

// NewOverlay returns an empty overlay.
func NewOverlay() *Overlay {
	var ctr uint64 = 1
	return &Overlay{pages: make(map[uint64]*opage), gen: 1, genCounter: &ctr}
}

// Get returns the value at addr and whether it is present.
func (o *Overlay) Get(addr uint64) (uint64, bool) {
	pn := addr >> pageShift
	p := o.getPg
	if p == nil || pn != o.getPN {
		var ok bool
		p, ok = o.pages[pn]
		if !ok {
			return 0, false
		}
		o.getPg, o.getPN = p, pn
	}
	idx := addr & pageMask
	if p.present[idx/64]&(1<<(idx%64)) == 0 {
		return 0, false
	}
	return p.data[idx], true
}

// Set stores v at addr.
func (o *Overlay) Set(addr uint64, v uint64) {
	pn := addr >> pageShift
	p := o.setPg
	if p == nil || pn != o.setPN {
		var ok bool
		p, ok = o.pages[pn]
		switch {
		case !ok:
			p = &opage{gen: o.gen}
			o.pages[pn] = p
		case p.gen != o.gen:
			cp := *p
			cp.gen = o.gen
			p = &cp
			o.pages[pn] = p
		}
		o.setPg, o.setPN = p, pn
		// A copy-on-write may have replaced the page the get cache holds.
		if o.getPg != nil && o.getPN == pn {
			o.getPg = p
		}
	}
	idx := addr & pageMask
	if p.present[idx/64]&(1<<(idx%64)) == 0 {
		p.present[idx/64] |= 1 << (idx % 64)
		o.count++
	}
	p.data[idx] = v
	o.version++
}

// SetIfAbsent binds addr to v only if addr is not already present, and
// reports whether it stored the value. It is the single-lookup form of the
// Get-then-Set pattern live-in capture uses on every memory read: one page
// walk instead of two.
func (o *Overlay) SetIfAbsent(addr, v uint64) bool {
	pn := addr >> pageShift
	p := o.setPg
	if p == nil || pn != o.setPN {
		var ok bool
		p, ok = o.pages[pn]
		switch {
		case !ok:
			p = &opage{gen: o.gen}
			o.pages[pn] = p
		case p.gen != o.gen:
			idx := addr & pageMask
			if p.present[idx/64]&(1<<(idx%64)) != 0 {
				return false // present in a shared page: no write, no CoW
			}
			cp := *p
			cp.gen = o.gen
			p = &cp
			o.pages[pn] = p
		}
		o.setPg, o.setPN = p, pn
		// A copy-on-write may have replaced the page the get cache holds.
		if o.getPg != nil && o.getPN == pn {
			o.getPg = p
		}
	}
	idx := addr & pageMask
	if p.present[idx/64]&(1<<(idx%64)) != 0 {
		return false
	}
	p.present[idx/64] |= 1 << (idx % 64)
	p.data[idx] = v
	o.count++
	o.version++
	return true
}

// Len returns the number of present words.
func (o *Overlay) Len() int { return o.count }

// Version returns the overlay's content version: it advances on every
// mutation (Set, SetIfAbsent binding a new word, Clear, Reset) and is left
// alone by Snapshot. A producer that recorded the version at its last
// Snapshot can therefore prove "nothing changed since" with one compare and
// hand out the previous snapshot again — the checkpoint-reuse fast path of
// the master engines (docs/MEMORY.md).
func (o *Overlay) Version() uint64 { return o.version }

// Snapshot returns a logically independent copy sharing pages copy-on-write.
// As with Memory.Snapshot, distinct family members may snapshot concurrently.
func (o *Overlay) Snapshot() *Overlay {
	gen := atomic.AddUint64(o.genCounter, 2)
	clone := &Overlay{
		pages:      make(map[uint64]*opage, len(o.pages)),
		gen:        gen - 1,
		genCounter: o.genCounter,
		count:      o.count,
	}
	for pn, p := range o.pages {
		clone.pages[pn] = p
	}
	o.gen = gen
	o.getPg = nil
	o.setPg = nil
	return clone
}

// Range calls f for every present (addr, value) pair until f returns false.
// Iteration order is unspecified.
func (o *Overlay) Range(f func(addr uint64, v uint64) bool) {
	for pn, p := range o.pages {
		for w, mask := range p.present {
			for mask != 0 {
				b := bits.TrailingZeros64(mask)
				mask &^= 1 << b
				idx := uint64(w*64 + b)
				if !f(pn<<pageShift|idx, p.data[idx]) {
					return
				}
			}
		}
	}
}

// Clear removes all entries. The overlay remains usable and keeps its
// snapshot family, so outstanding snapshots are unaffected.
func (o *Overlay) Clear() {
	o.pages = make(map[uint64]*opage)
	o.gen = atomic.AddUint64(o.genCounter, 1)
	o.count = 0
	o.version++
	o.getPg = nil
	o.setPg = nil
}

// Reset removes all entries like Clear but reuses the overlay's allocations:
// the page map keeps its buckets, and pages the overlay exclusively owns
// (generation tag equal to the overlay's own — provably unaliased, because
// every Snapshot retags both sides) are kept and wiped in place. Shared
// pages may be referenced by snapshots and are dropped instead. This
// generation check is what makes pooled reuse safe: a Reset can never
// scribble on a page some outstanding snapshot still reads.
func (o *Overlay) Reset() {
	for pn, p := range o.pages {
		if p.gen != o.gen {
			delete(o.pages, pn)
			continue
		}
		p.present = [PageWords / 64]uint64{}
	}
	o.count = 0
	o.version++
	o.getPg = nil
	o.setPg = nil
}

// OverlayReader is a read-only cursor over an overlay, carrying its own
// one-entry page cache. Overlay.Get caches the last page on the overlay
// itself and is therefore a mutating call; a frozen overlay shared between
// tasks (a checkpoint diff handed to several slaves) must instead be read
// through per-reader cursors — each goroutine owns its OverlayReader, the
// shared overlay is never written, and the reads race with nothing.
//
// The cursor caches a page pointer, so it must only be used while the
// underlying overlay is logically frozen: a Set/Clear/Reset on the overlay
// invalidates every outstanding reader (docs/MEMORY.md has the aliasing
// table).
type OverlayReader struct {
	o  *Overlay
	pn uint64
	pg *opage
}

// Init points the reader at o and drops any cached page. A reader is a
// plain value; Init (re)initializes it without allocating.
func (r *OverlayReader) Init(o *Overlay) {
	r.o = o
	r.pg = nil
}

// Get returns the value at addr and whether it is present, without mutating
// the underlying overlay.
func (r *OverlayReader) Get(addr uint64) (uint64, bool) {
	pn := addr >> pageShift
	p := r.pg
	if p == nil || pn != r.pn {
		var ok bool
		p, ok = r.o.pages[pn]
		if !ok {
			return 0, false
		}
		r.pg, r.pn = p, pn
	}
	idx := addr & pageMask
	if p.present[idx/64]&(1<<(idx%64)) == 0 {
		return 0, false
	}
	return p.data[idx], true
}
