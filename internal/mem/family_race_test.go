package mem

import (
	"sync"
	"testing"
)

// TestMemoryFamilyConcurrency exercises the package concurrency contract the
// parallel engine relies on: distinct members of one snapshot family are used
// — and snapshotted — from different goroutines at once, while each value
// stays goroutine-confined. Run under -race this validates that page sharing
// plus the atomic generation counter really is data-race free, and the value
// checks validate that copy-on-write isolation holds under contention.
func TestMemoryFamilyConcurrency(t *testing.T) {
	parent := New()
	for a := uint64(0); a < 8*PageWords; a += 3 {
		parent.Write(a, a)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		snap := parent.Snapshot() // taken on this goroutine, used on another
		wg.Add(1)
		go func(id uint64, m *Memory) {
			defer wg.Done()
			// Reads must see the frozen image regardless of what the parent
			// does concurrently.
			for a := uint64(0); a < 8*PageWords; a += 3 {
				if got := m.Read(a); got != a {
					errs <- "snapshot read tore"
					return
				}
			}
			// Writes and grandchild snapshots stay private to this member.
			for a := uint64(0); a < 2*PageWords; a++ {
				m.Write(a, id)
			}
			child := m.Snapshot()
			if got := child.Read(1); got != id {
				errs <- "grandchild snapshot lost a write"
			}
		}(uint64(w)+100, snap)
	}
	// The parent keeps mutating and snapshotting concurrently.
	for i := 0; i < 50; i++ {
		for a := uint64(0); a < 4*PageWords; a += 7 {
			parent.Write(a, uint64(i))
		}
		_ = parent.Snapshot()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestOverlayFamilyConcurrency is the Overlay half of the contract: master
// checkpoint diffs are Overlay snapshots handed to slave goroutines while the
// master keeps writing its own overlay.
func TestOverlayFamilyConcurrency(t *testing.T) {
	master := NewOverlay()
	for a := uint64(0); a < 4*PageWords; a += 5 {
		master.Set(a, a+1)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		ck := master.Snapshot()
		wg.Add(1)
		go func(o *Overlay) {
			defer wg.Done()
			for a := uint64(0); a < 4*PageWords; a += 5 {
				if v, ok := o.Get(a); !ok || v != a+1 {
					errs <- "checkpoint overlay read tore"
					return
				}
			}
			if _, ok := o.Get(2); ok {
				errs <- "phantom binding"
			}
		}(ck)
	}
	for i := 0; i < 50; i++ {
		for a := uint64(0); a < 2*PageWords; a += 3 {
			master.Set(a, uint64(i))
		}
		_ = master.Snapshot()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
