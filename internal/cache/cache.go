// Package cache provides content-keyed memoization of expensive pipeline
// artifacts (assembled programs, profiles, distilled programs, baseline
// runs). A Cache is an LRU-bounded map with hit/miss/eviction counters and
// single-flight semantics: concurrent callers that need the same artifact
// compute it exactly once and all receive the same value — for pointer
// types, the identical pointer — so a parallel sweep never duplicates a
// distillation the way independent goroutines otherwise would.
package cache

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
)

// Metrics is a point-in-time snapshot of a cache's activity counters.
type Metrics struct {
	// Hits counts lookups served from a resident entry.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that had to run their compute function.
	Misses uint64 `json:"misses"`
	// Evictions counts entries dropped to keep the cache within capacity.
	Evictions uint64 `json:"evictions"`
	// Shared counts callers that waited on another goroutine's in-flight
	// compute instead of starting their own (single-flight coalescing).
	Shared uint64 `json:"shared"`
	// Size is the current number of resident entries.
	Size int `json:"size"`
	// Capacity is the LRU bound.
	Capacity int `json:"capacity"`
}

// HitRate returns hits over total lookups (0 when the cache is unused).
func (m Metrics) HitRate() float64 {
	total := m.Hits + m.Misses
	if total == 0 {
		return 0
	}
	return float64(m.Hits) / float64(total)
}

// Add returns the field-wise sum of two snapshots (capacity is summed too;
// use it only for aggregate reporting).
func (m Metrics) Add(o Metrics) Metrics {
	return Metrics{
		Hits:      m.Hits + o.Hits,
		Misses:    m.Misses + o.Misses,
		Evictions: m.Evictions + o.Evictions,
		Shared:    m.Shared + o.Shared,
		Size:      m.Size + o.Size,
		Capacity:  m.Capacity + o.Capacity,
	}
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// flight is one in-progress compute; waiters block on done and then read
// val/err, which are written exactly once before done is closed.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Cache is a concurrency-safe, LRU-bounded, single-flight memoization map.
// The zero value is not usable; construct with New.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	entries  map[K]*list.Element // values are *entry[K, V]
	order    *list.List          // front = most recently used
	inflight map[K]*flight[V]

	hits, misses, evictions, shared uint64
}

// New returns a cache holding at most capacity entries (minimum 1).
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[K, V]{
		capacity: capacity,
		entries:  make(map[K]*list.Element),
		order:    list.New(),
		inflight: make(map[K]*flight[V]),
	}
}

// GetOrCompute returns the value for key, running compute on a miss.
// Concurrent calls for the same key share one compute call: the first
// caller computes while the rest wait and receive the same value. Errors
// are not cached — a failed compute leaves the key absent and the next
// caller retries. compute runs without the cache lock held, so it may
// itself use this or other caches.
func (c *Cache[K, V]) GetOrCompute(key K, compute func() (V, error)) (V, error) {
	c.mu.Lock()
	for {
		if el, ok := c.entries[key]; ok {
			c.hits++
			c.order.MoveToFront(el)
			v := el.Value.(*entry[K, V]).val
			c.mu.Unlock()
			return v, nil
		}
		fl, ok := c.inflight[key]
		if !ok {
			break
		}
		c.shared++
		c.mu.Unlock()
		<-fl.done
		if fl.err == nil {
			return fl.val, nil
		}
		// The flight we joined failed; retry — we may become the computer.
		c.mu.Lock()
	}
	fl := &flight[V]{done: make(chan struct{})}
	c.inflight[key] = fl
	c.misses++
	c.mu.Unlock()

	v, err := compute()
	fl.val, fl.err = v, err
	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		c.put(key, v)
	}
	c.mu.Unlock()
	close(fl.done)
	return v, err
}

// Get returns the resident value for key, if any, marking it recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put inserts or replaces the value for key.
func (c *Cache[K, V]) Put(key K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(key, v)
}

// put inserts with the lock held, evicting from the LRU tail as needed.
func (c *Cache[K, V]) put(key K, v V) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry[K, V]).val = v
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&entry[K, V]{key: key, val: v})
	for len(c.entries) > c.capacity {
		back := c.order.Back()
		victim := back.Value.(*entry[K, V])
		c.order.Remove(back)
		delete(c.entries, victim.key)
		c.evictions++
	}
}

// Len returns the number of resident entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Metrics returns a snapshot of the counters.
func (c *Cache[K, V]) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Metrics{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Shared:    c.shared,
		Size:      len(c.entries),
		Capacity:  c.capacity,
	}
}

// KeyOf builds a content key from the printed representation of its parts
// (workload name, input class, distiller options, ...), prefixed with an
// FNV-1a hash of the same bytes. Keeping the full rendering in the key
// makes distinct inputs collide only if they print identically, while the
// hash prefix keeps map comparisons cheap for long keys.
func KeyOf(parts ...any) string {
	var b strings.Builder
	for i, p := range parts {
		if i > 0 {
			b.WriteByte(0x1f) // unit separator: "ab","c" ≠ "a","bc"
		}
		fmt.Fprintf(&b, "%v", p)
	}
	h := fnv.New64a()
	h.Write([]byte(b.String()))
	return fmt.Sprintf("%016x\x1e%s", h.Sum64(), b.String())
}
