package cache

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetOrComputeBasics(t *testing.T) {
	c := New[string, int](4)
	calls := 0
	get := func(k string, v int) int {
		got, err := c.GetOrCompute(k, func() (int, error) { calls++; return v, nil })
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	if got := get("a", 1); got != 1 {
		t.Fatalf("a = %d", got)
	}
	if got := get("a", 99); got != 1 {
		t.Fatalf("cached a = %d, want original 1", got)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times", calls)
	}
	m := c.Metrics()
	if m.Hits != 1 || m.Misses != 1 || m.Size != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if m.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", m.HitRate())
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New[string, int](4)
	boom := errors.New("boom")
	calls := 0
	_, err := c.GetOrCompute("k", func() (int, error) { calls++; return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, err := c.GetOrCompute("k", func() (int, error) { calls++; return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry = %d, %v", v, err)
	}
	if calls != 2 {
		t.Errorf("compute ran %d times, want 2 (failure must not be cached)", calls)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int, int](3)
	for i := 0; i < 3; i++ {
		c.Put(i, i)
	}
	// Touch 0 so 1 becomes the LRU victim.
	if _, ok := c.Get(0); !ok {
		t.Fatal("0 missing")
	}
	c.Put(3, 3)
	if _, ok := c.Get(1); ok {
		t.Error("1 should have been evicted")
	}
	for _, k := range []int{0, 2, 3} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%d should be resident", k)
		}
	}
	if m := c.Metrics(); m.Evictions != 1 || m.Size != 3 {
		t.Errorf("metrics = %+v", m)
	}
}

// TestSingleFlightSharesPointer exercises the issue's key edge case: many
// goroutines demanding the same artifact must trigger exactly one compute
// and all receive the identical pointer.
func TestSingleFlightSharesPointer(t *testing.T) {
	type artifact struct{ n int }
	c := New[string, *artifact](8)
	var computes atomic.Int64
	gate := make(chan struct{})

	const goroutines = 32
	results := make([]*artifact, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.GetOrCompute("k", func() (*artifact, error) {
				computes.Add(1)
				<-gate // hold the flight open until all goroutines have queued or hit
				return &artifact{n: 42}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Let the waiters pile up, then release the one compute.
	for {
		m := c.Metrics()
		if m.Misses == 1 && m.Shared >= 1 {
			break
		}
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i, r := range results {
		if r == nil || r != results[0] {
			t.Fatalf("goroutine %d got a different artifact pointer", i)
		}
	}
}

// TestConcurrentDistinctKeysWithEviction hammers a small cache from many
// goroutines over a larger keyspace: every lookup must return the value for
// its own key (no cross-key contamination under eviction pressure).
func TestConcurrentDistinctKeysWithEviction(t *testing.T) {
	c := New[int, int](8)
	const goroutines, iters, keys = 16, 200, 64
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g*31 + i) % keys
				v, err := c.GetOrCompute(k, func() (int, error) { return k * 1000, nil })
				if err != nil {
					errc <- err
					return
				}
				if v != k*1000 {
					errc <- fmt.Errorf("key %d returned %d", k, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.Size > 8 {
		t.Errorf("size %d exceeds capacity", m.Size)
	}
	if m.Evictions == 0 {
		t.Error("expected evictions with keyspace > capacity")
	}
}

// TestKeyOfCollisionResistance checks that keys built from adjacent field
// boundaries and differing option values do not collide.
func TestKeyOfCollisionResistance(t *testing.T) {
	pairs := [][2]string{
		{KeyOf("ab", "c"), KeyOf("a", "bc")},
		{KeyOf("prog", "compress", 1), KeyOf("prog", "compress", 2)},
		{KeyOf("distill", "mtf", 100, 0.99), KeyOf("distill", "mtf", 100, 0.995)},
		{KeyOf("distill", "mtf", 1000, 0.99), KeyOf("distill", "mtf", 100, 00.99)},
		{KeyOf("profile", "interp", uint64(25)), KeyOf("baseline", "interp", uint64(25))},
	}
	for i, p := range pairs {
		if p[0] == p[1] {
			t.Errorf("pair %d collides: %q", i, p[0])
		}
	}
	if KeyOf("a", 1) != KeyOf("a", 1) {
		t.Error("KeyOf not deterministic")
	}
}

func TestCapacityFloorAndPutReplace(t *testing.T) {
	c := New[string, int](0) // clamps to 1
	c.Put("a", 1)
	c.Put("a", 2)
	if v, _ := c.Get("a"); v != 2 {
		t.Errorf("replace failed: %d", v)
	}
	c.Put("b", 3)
	if _, ok := c.Get("a"); ok {
		t.Error("capacity-1 cache kept two entries")
	}
	if m := c.Metrics(); m.Capacity != 1 {
		t.Errorf("capacity = %d", m.Capacity)
	}
}

func TestMetricsAdd(t *testing.T) {
	a := Metrics{Hits: 1, Misses: 2, Evictions: 3, Shared: 4, Size: 5, Capacity: 6}
	sum := a.Add(a)
	if sum.Hits != 2 || sum.Misses != 4 || sum.Evictions != 6 || sum.Shared != 8 || sum.Size != 10 || sum.Capacity != 12 {
		t.Errorf("sum = %+v", sum)
	}
}
