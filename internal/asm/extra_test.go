package asm

import (
	"fmt"
	"math/rand"
	"testing"

	"mssp/internal/isa"
)

// TestGeneratedProgramsAssemble builds random-but-valid source texts and
// checks the assembler accepts them and lays them out densely.
func TestGeneratedProgramsAssemble(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(40)
		src := ""
		for i := 0; i < n; i++ {
			r1, r2, r3 := rng.Intn(30)+1, rng.Intn(30)+1, rng.Intn(30)+1
			switch rng.Intn(6) {
			case 0:
				src += fmt.Sprintf("l%d: add r%d, r%d, r%d\n", i, r1, r2, r3)
			case 1:
				src += fmt.Sprintf("l%d: addi r%d, r%d, %d\n", i, r1, r2, rng.Intn(1000)-500)
			case 2:
				src += fmt.Sprintf("l%d: ldi r%d, %d\n", i, r1, rng.Intn(100000))
			case 3:
				src += fmt.Sprintf("l%d: ld r%d, %d(r%d)\n", i, r1, rng.Intn(64), r2)
			case 4:
				src += fmt.Sprintf("l%d: st r%d, %d(r%d)\n", i, r1, rng.Intn(64), r2)
			case 5:
				// Forward branch to a label that always exists (the halt).
				src += fmt.Sprintf("l%d: beq r%d, r%d, end\n", i, r1, r2)
			}
		}
		src += "end: halt\n"
		p, err := Assemble(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		if len(p.Code.Words) != n+1 {
			t.Fatalf("trial %d: %d words, want %d", trial, len(p.Code.Words), n+1)
		}
		for i, w := range p.Code.Words {
			if !isa.Decode(w).Op.Valid() {
				t.Fatalf("trial %d: word %d undecodable", trial, i)
			}
		}
	}
}

// TestDisassembleReassembleStable: for ops whose disassembly is accepted
// assembler syntax, text -> program -> disassemble -> reassemble must be a
// fixpoint.
func TestDisassembleReassembleStable(t *testing.T) {
	src := `
		add r1, r2, r3
		sub r4, r5, r6
		addi r7, r8, -42
		ldi r9, 777
		ld r1, 5(r2)
		st r3, 7(r4)
		beq r1, r2, 0
		jal r31, 0
		jalr r0, r31, 0
		nop
		fork 3
		halt r0, 0
	`
	p1, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	text := p1.Disassemble()
	// Strip the "addr:" prefixes to get assembler-ready source.
	src2 := ""
	for _, line := range splitLines(text) {
		if idx := indexByte(line, ':'); idx >= 0 {
			src2 += line[idx+1:] + "\n"
		}
	}
	p2, err := Assemble(src2)
	if err != nil {
		t.Fatalf("reassembling disassembly: %v\n%s", err, src2)
	}
	if len(p1.Code.Words) != len(p2.Code.Words) {
		t.Fatalf("length changed: %d vs %d", len(p1.Code.Words), len(p2.Code.Words))
	}
	for i := range p1.Code.Words {
		if p1.Code.Words[i] != p2.Code.Words[i] {
			t.Errorf("word %d changed: %v vs %v",
				i, isa.Decode(p1.Code.Words[i]), isa.Decode(p2.Code.Words[i]))
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
