// Package asm implements a two-pass assembler for the MIR instruction set.
//
// The source language is line-oriented. A line holds an optional label, then
// an optional instruction or directive, then an optional comment introduced
// by '#' or ';'.
//
// Directives:
//
//	.code            switch to the code section (the default)
//	.data            switch to the data section
//	.org N           set the base address of the current section (before
//	                 anything has been emitted into it)
//	.entry LABEL     set the program entry point (default: code base)
//	.word E, E, ...  emit data words (expressions allowed)
//	.space N         reserve N zeroed words
//	.secret E, E     annotate the half-open address range [lo, hi) as
//	                 secret (isa.Program.Secret) for the taint analyses;
//	                 emits nothing and is allowed in either section
//
// Operands:
//
//	registers     r0..r31, or the aliases zero, sp, ra
//	immediates    decimal or 0x hex, optionally negative
//	labels        a label name, optionally with +N or -N
//	displacement  imm(reg) for ld/st
//
// Pseudo-instructions:
//
//	li rd, imm      ldi (imm must fit in 32 signed bits)
//	la rd, label    ldi with a label value
//	mov rd, rs      addi rd, rs, 0
//	j label         jal r0, label
//	jr rs           jalr r0, rs, 0
//	call label      jal ra, label
//	ret             jalr r0, ra, 0
//	beqz rs, label  beq rs, r0, label
//	bnez rs, label  bne rs, r0, label
//	halt            halt r0, 0
//
// Code and data live in one address space; each instruction and each data
// word occupies one word address.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"mssp/internal/isa"
)

// Error is an assembly error tagged with a 1-based source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// Assemble translates MIR assembly source into a program.
func Assemble(src string) (*isa.Program, error) {
	a := &assembler{
		labels:   make(map[string]uint64),
		codeBase: 0,
		dataBase: 1 << 20, // default data base, far from code
	}
	if err := a.pass1(src); err != nil {
		return nil, err
	}
	return a.pass2(src)
}

// MustAssemble is Assemble for sources that are compiled into the binary;
// it panics on error. Workloads use it so malformed programs fail loudly.
func MustAssemble(src string) *isa.Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	labels     map[string]uint64
	codeBase   uint64
	dataBase   uint64
	codeLen    uint64 // in words
	dataLen    uint64
	entryLabel string
	entrySet   bool
}

type stmt struct {
	line    int
	label   string
	mnem    string // lower-case mnemonic or directive (with leading '.')
	args    []string
	inData  bool
	address uint64 // assigned in pass 1 (for emitting statements)
}

// parseLines splits source into statements, leaving operand parsing for later.
func parseLines(src string) ([]stmt, error) {
	var out []stmt
	for i, raw := range strings.Split(src, "\n") {
		line := raw
		if idx := strings.IndexAny(line, "#;"); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		st := stmt{line: i + 1}
		if idx := strings.Index(line, ":"); idx >= 0 && !strings.ContainsAny(line[:idx], " \t") {
			st.label = line[:idx]
			if st.label == "" {
				return nil, &Error{i + 1, "empty label"}
			}
			line = strings.TrimSpace(line[idx+1:])
		}
		if line != "" {
			fields := strings.Fields(line)
			st.mnem = strings.ToLower(fields[0])
			rest := strings.TrimSpace(line[len(fields[0]):])
			if rest != "" {
				for _, arg := range strings.Split(rest, ",") {
					st.args = append(st.args, strings.TrimSpace(arg))
				}
			}
		}
		out = append(out, st)
	}
	return out, nil
}

// size returns the number of words a statement emits.
func (a *assembler) size(st *stmt) (uint64, error) {
	switch st.mnem {
	case "", ".org", ".entry", ".code", ".data":
		return 0, nil
	case ".secret":
		if len(st.args) != 2 {
			return 0, &Error{st.line, ".secret wants two arguments: lo, hi"}
		}
		return 0, nil
	case ".word":
		return uint64(len(st.args)), nil
	case ".space":
		n, err := strconv.ParseUint(st.args[0], 0, 32)
		if err != nil {
			return 0, &Error{st.line, fmt.Sprintf(".space wants a count: %v", err)}
		}
		return n, nil
	default:
		return 1, nil // every instruction (incl. pseudo) is one word
	}
}

func (a *assembler) pass1(src string) error {
	stmts, err := parseLines(src)
	if err != nil {
		return err
	}
	inData := false
	var codePC, dataPC uint64
	orgSeen := map[bool]bool{}
	emitted := map[bool]bool{}
	for i := range stmts {
		st := &stmts[i]
		switch st.mnem {
		case ".code":
			inData = false
			continue
		case ".data":
			inData = true
			continue
		case ".org":
			if len(st.args) != 1 {
				return &Error{st.line, ".org wants one argument"}
			}
			n, err := strconv.ParseUint(st.args[0], 0, 64)
			if err != nil {
				return &Error{st.line, fmt.Sprintf("bad .org address: %v", err)}
			}
			if emitted[inData] {
				return &Error{st.line, ".org after emission in section"}
			}
			if orgSeen[inData] {
				return &Error{st.line, "duplicate .org for section"}
			}
			orgSeen[inData] = true
			if inData {
				a.dataBase = n
			} else {
				a.codeBase = n
			}
			continue
		case ".entry":
			if len(st.args) != 1 {
				return &Error{st.line, ".entry wants one label"}
			}
			a.entryLabel = st.args[0]
			a.entrySet = true
			continue
		}

		pc := &codePC
		base := a.codeBase
		if inData {
			pc = &dataPC
			base = a.dataBase
		}
		if st.label != "" {
			if _, dup := a.labels[st.label]; dup {
				return &Error{st.line, fmt.Sprintf("duplicate label %q", st.label)}
			}
			a.labels[st.label] = base + *pc
		}
		sz, err := a.size(st)
		if err != nil {
			return err
		}
		if st.mnem != "" {
			st.inData = inData
			st.address = base + *pc
			if sz > 0 {
				emitted[inData] = true
			}
			if !inData && (st.mnem == ".word" || st.mnem == ".space") {
				return &Error{st.line, "data directive in code section"}
			}
			if inData && st.mnem[0] != '.' {
				return &Error{st.line, "instruction in data section"}
			}
		}
		*pc += sz
	}
	a.codeLen, a.dataLen = codePC, dataPC
	return nil
}

func (a *assembler) pass2(src string) (*isa.Program, error) {
	stmts, _ := parseLines(src) // pass1 already validated line structure
	p := &isa.Program{
		Code:    isa.Segment{Base: a.codeBase, Words: make([]uint64, 0, a.codeLen)},
		Symbols: a.labels,
	}
	data := isa.Segment{Base: a.dataBase, Words: make([]uint64, 0, a.dataLen)}

	for i := range stmts {
		st := &stmts[i]
		switch st.mnem {
		case "", ".org", ".entry", ".code", ".data":
			continue
		case ".secret":
			lo, err := a.evalExpr(st.args[0], st.line)
			if err != nil {
				return nil, err
			}
			hi, err := a.evalExpr(st.args[1], st.line)
			if err != nil {
				return nil, err
			}
			p.Secret = append(p.Secret, isa.Region{Lo: lo, Hi: hi})
			continue
		case ".word":
			for _, arg := range st.args {
				v, err := a.evalExpr(arg, st.line)
				if err != nil {
					return nil, err
				}
				data.Words = append(data.Words, v)
			}
			continue
		case ".space":
			n, _ := strconv.ParseUint(st.args[0], 0, 32)
			data.Words = append(data.Words, make([]uint64, n)...)
			continue
		}
		in, err := a.encodeInst(st)
		if err != nil {
			return nil, err
		}
		w, err := isa.EncodeChecked(in)
		if err != nil {
			return nil, &Error{st.line, err.Error()}
		}
		p.Code.Words = append(p.Code.Words, w)
	}

	if len(data.Words) > 0 {
		p.Data = []isa.Segment{data}
	}
	p.Entry = a.codeBase
	if a.entrySet {
		addr, ok := a.labels[a.entryLabel]
		if !ok {
			return nil, &Error{0, fmt.Sprintf("undefined entry label %q", a.entryLabel)}
		}
		p.Entry = addr
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// evalExpr evaluates an immediate operand: a number, a label, or label±N.
func (a *assembler) evalExpr(s string, line int) (uint64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, &Error{line, "empty operand"}
	}
	// Plain number (possibly negative)?
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return uint64(v), nil
	}
	if v, err := strconv.ParseUint(s, 0, 64); err == nil {
		return v, nil
	}
	// label, label+N, label-N
	name, off := s, int64(0)
	for _, sep := range []string{"+", "-"} {
		if idx := strings.Index(s, sep); idx > 0 {
			name = strings.TrimSpace(s[:idx])
			n, err := strconv.ParseInt(strings.TrimSpace(s[idx:]), 0, 64)
			if err != nil {
				return 0, &Error{line, fmt.Sprintf("bad offset in %q", s)}
			}
			off = n
			break
		}
	}
	addr, ok := a.labels[name]
	if !ok {
		return 0, &Error{line, fmt.Sprintf("undefined symbol %q", name)}
	}
	return addr + uint64(off), nil
}

func parseReg(s string) (uint8, bool) {
	switch strings.ToLower(s) {
	case "zero":
		return isa.RegZero, true
	case "sp":
		return isa.RegSP, true
	case "ra":
		return isa.RegRA, true
	}
	if len(s) >= 2 && (s[0] == 'r' || s[0] == 'R') {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return uint8(n), true
		}
	}
	return 0, false
}

func (a *assembler) reg(s string, line int) (uint8, error) {
	r, ok := parseReg(s)
	if !ok {
		return 0, &Error{line, fmt.Sprintf("bad register %q", s)}
	}
	return r, nil
}

func (a *assembler) imm(s string, line int) (int64, error) {
	v, err := a.evalExpr(s, line)
	if err != nil {
		return 0, err
	}
	iv := int64(v)
	if iv < -(1<<31) || iv > (1<<31)-1 {
		return 0, &Error{line, fmt.Sprintf("immediate %d out of 32-bit range", iv)}
	}
	return iv, nil
}

// parseDisp splits "imm(reg)" into its parts.
func (a *assembler) parseDisp(s string, line int) (int64, uint8, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, &Error{line, fmt.Sprintf("bad displacement operand %q", s)}
	}
	immPart := strings.TrimSpace(s[:open])
	if immPart == "" {
		immPart = "0"
	}
	imm, err := a.imm(immPart, line)
	if err != nil {
		return 0, 0, err
	}
	r, err := a.reg(strings.TrimSpace(s[open+1:len(s)-1]), line)
	if err != nil {
		return 0, 0, err
	}
	return imm, r, nil
}

var regRegRegOps = map[string]isa.Op{
	"add": isa.OpAdd, "sub": isa.OpSub, "mul": isa.OpMul, "div": isa.OpDiv,
	"rem": isa.OpRem, "and": isa.OpAnd, "or": isa.OpOr, "xor": isa.OpXor,
	"sll": isa.OpSll, "srl": isa.OpSrl, "sra": isa.OpSra,
	"slt": isa.OpSlt, "sltu": isa.OpSltu,
}

var regRegImmOps = map[string]isa.Op{
	"addi": isa.OpAddi, "andi": isa.OpAndi, "ori": isa.OpOri, "xori": isa.OpXori,
	"slli": isa.OpSlli, "srli": isa.OpSrli, "srai": isa.OpSrai,
	"slti": isa.OpSlti, "sltui": isa.OpSltui, "muli": isa.OpMuli,
}

var branchOps = map[string]isa.Op{
	"beq": isa.OpBeq, "bne": isa.OpBne, "blt": isa.OpBlt,
	"bge": isa.OpBge, "bltu": isa.OpBltu, "bgeu": isa.OpBgeu,
}

func (a *assembler) encodeInst(st *stmt) (isa.Inst, error) {
	bad := func(format string, args ...any) (isa.Inst, error) {
		return isa.Inst{}, &Error{st.line, fmt.Sprintf(format, args...)}
	}
	need := func(n int) error {
		if len(st.args) != n {
			return &Error{st.line, fmt.Sprintf("%s wants %d operands, got %d", st.mnem, n, len(st.args))}
		}
		return nil
	}

	if op, ok := regRegRegOps[st.mnem]; ok {
		if err := need(3); err != nil {
			return isa.Inst{}, err
		}
		rd, err := a.reg(st.args[0], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		rs1, err := a.reg(st.args[1], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		rs2, err := a.reg(st.args[2], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, nil
	}
	if op, ok := regRegImmOps[st.mnem]; ok {
		if err := need(3); err != nil {
			return isa.Inst{}, err
		}
		rd, err := a.reg(st.args[0], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		rs1, err := a.reg(st.args[1], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		imm, err := a.imm(st.args[2], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm}, nil
	}
	if op, ok := branchOps[st.mnem]; ok {
		if err := need(3); err != nil {
			return isa.Inst{}, err
		}
		rs1, err := a.reg(st.args[0], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		rs2, err := a.reg(st.args[1], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		imm, err := a.imm(st.args[2], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: imm}, nil
	}

	switch st.mnem {
	case "nop":
		if err := need(0); err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpNop}, nil

	case "ldi", "li", "la":
		if err := need(2); err != nil {
			return isa.Inst{}, err
		}
		rd, err := a.reg(st.args[0], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		imm, err := a.imm(st.args[1], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpLdi, Rd: rd, Imm: imm}, nil

	case "ldih":
		if err := need(2); err != nil {
			return isa.Inst{}, err
		}
		rd, err := a.reg(st.args[0], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		imm, err := a.imm(st.args[1], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpLdih, Rd: rd, Rs1: rd, Imm: imm}, nil

	case "mov":
		if err := need(2); err != nil {
			return isa.Inst{}, err
		}
		rd, err := a.reg(st.args[0], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		rs, err := a.reg(st.args[1], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpAddi, Rd: rd, Rs1: rs}, nil

	case "ld":
		if err := need(2); err != nil {
			return isa.Inst{}, err
		}
		rd, err := a.reg(st.args[0], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		imm, rs1, err := a.parseDisp(st.args[1], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpLd, Rd: rd, Rs1: rs1, Imm: imm}, nil

	case "st":
		if err := need(2); err != nil {
			return isa.Inst{}, err
		}
		rs2, err := a.reg(st.args[0], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		imm, rs1, err := a.parseDisp(st.args[1], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpSt, Rs1: rs1, Rs2: rs2, Imm: imm}, nil

	case "beqz", "bnez":
		if err := need(2); err != nil {
			return isa.Inst{}, err
		}
		rs1, err := a.reg(st.args[0], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		imm, err := a.imm(st.args[1], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		op := isa.OpBeq
		if st.mnem == "bnez" {
			op = isa.OpBne
		}
		return isa.Inst{Op: op, Rs1: rs1, Imm: imm}, nil

	case "jal":
		if err := need(2); err != nil {
			return isa.Inst{}, err
		}
		rd, err := a.reg(st.args[0], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		imm, err := a.imm(st.args[1], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpJal, Rd: rd, Imm: imm}, nil

	case "jalr":
		if err := need(3); err != nil {
			return isa.Inst{}, err
		}
		rd, err := a.reg(st.args[0], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		rs1, err := a.reg(st.args[1], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		imm, err := a.imm(st.args[2], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpJalr, Rd: rd, Rs1: rs1, Imm: imm}, nil

	case "j":
		if err := need(1); err != nil {
			return isa.Inst{}, err
		}
		imm, err := a.imm(st.args[0], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpJal, Rd: isa.RegZero, Imm: imm}, nil

	case "jr":
		if err := need(1); err != nil {
			return isa.Inst{}, err
		}
		rs1, err := a.reg(st.args[0], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpJalr, Rd: isa.RegZero, Rs1: rs1}, nil

	case "call":
		if err := need(1); err != nil {
			return isa.Inst{}, err
		}
		imm, err := a.imm(st.args[0], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpJal, Rd: isa.RegRA, Imm: imm}, nil

	case "ret":
		if err := need(0); err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpJalr, Rd: isa.RegZero, Rs1: isa.RegRA}, nil

	case "halt":
		// Accepts: halt | halt imm | halt reg, imm (the disassembly form).
		switch len(st.args) {
		case 0:
			return isa.Inst{Op: isa.OpHalt}, nil
		case 1:
			imm, err := a.imm(st.args[0], st.line)
			if err != nil {
				return isa.Inst{}, err
			}
			return isa.Inst{Op: isa.OpHalt, Imm: imm}, nil
		case 2:
			rs1, err := a.reg(st.args[0], st.line)
			if err != nil {
				return isa.Inst{}, err
			}
			imm, err := a.imm(st.args[1], st.line)
			if err != nil {
				return isa.Inst{}, err
			}
			return isa.Inst{Op: isa.OpHalt, Rs1: rs1, Imm: imm}, nil
		}
		return bad("halt wants at most 2 operands")

	case "fork":
		if err := need(1); err != nil {
			return isa.Inst{}, err
		}
		imm, err := a.imm(st.args[0], st.line)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpFork, Imm: imm}, nil
	}

	return bad("unknown mnemonic %q", st.mnem)
}
