package asm

import (
	"strings"
	"testing"

	"mssp/internal/cpu"
	"mssp/internal/isa"
	"mssp/internal/state"
)

// runProgram assembles and executes src, returning the final state.
func runProgram(t *testing.T, src string, maxSteps uint64) *state.State {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	s := state.NewFromProgram(p, 1<<19)
	res, err := cpu.Run(cpu.StateEnv{S: s}, maxSteps)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Halted {
		t.Fatalf("program did not halt in %d steps", maxSteps)
	}
	return s
}

func TestAssembleCountdownLoop(t *testing.T) {
	s := runProgram(t, `
		# sum 1..10 into r2
		        ldi  r1, 10
		        ldi  r2, 0
		loop:   add  r2, r2, r1
		        addi r1, r1, -1
		        bnez r1, loop
		        halt
	`, 1000)
	if got := s.ReadReg(2); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestAssembleDataAndSymbols(t *testing.T) {
	src := `
		.entry main
		main:   la   r1, table
		        ld   r2, 1(r1)      ; table[1]
		        la   r3, result
		        st   r2, 0(r3)
		        halt
		.data
		.org 5000
		table:  .word 10, 20, 30
		result: .space 2
		after:  .word 7
	`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.MustSymbol("table") != 5000 || p.MustSymbol("result") != 5003 || p.MustSymbol("after") != 5005 {
		t.Errorf("data layout wrong: table=%d result=%d after=%d",
			p.MustSymbol("table"), p.MustSymbol("result"), p.MustSymbol("after"))
	}
	s := state.NewFromProgram(p, 1<<19)
	if _, err := cpu.Run(cpu.StateEnv{S: s}, 100); err != nil {
		t.Fatal(err)
	}
	if got := s.Mem.Read(p.MustSymbol("result")); got != 20 {
		t.Errorf("result = %d, want 20", got)
	}
	if s.Mem.Read(p.MustSymbol("after")) != 7 {
		t.Error(".space mis-sized")
	}
}

func TestAssembleCallRet(t *testing.T) {
	s := runProgram(t, `
		.entry main
		double: add r1, r2, r2
		        ret
		main:   ldi  r2, 21
		        call double
		        halt
	`, 100)
	if s.ReadReg(1) != 42 {
		t.Errorf("r1 = %d, want 42", s.ReadReg(1))
	}
}

func TestAssembleIndirectJump(t *testing.T) {
	s := runProgram(t, `
		main:   la   r1, target
		        jr   r1
		        ldi  r2, 1    ; skipped
		        halt
		target: ldi  r2, 2
		        halt
	`, 100)
	if s.ReadReg(2) != 2 {
		t.Errorf("r2 = %d, want 2", s.ReadReg(2))
	}
}

func TestAssembleAllMnemonics(t *testing.T) {
	// One of everything; just has to assemble and round-trip the encoding.
	src := `
		l:  add r1, r2, r3
		    sub r1, r2, r3
		    mul r1, r2, r3
		    div r1, r2, r3
		    rem r1, r2, r3
		    and r1, r2, r3
		    or  r1, r2, r3
		    xor r1, r2, r3
		    sll r1, r2, r3
		    srl r1, r2, r3
		    sra r1, r2, r3
		    slt r1, r2, r3
		    sltu r1, r2, r3
		    addi r1, r2, -7
		    andi r1, r2, 0xff
		    ori r1, r2, 1
		    xori r1, r2, 1
		    slli r1, r2, 3
		    srli r1, r2, 3
		    srai r1, r2, 3
		    slti r1, r2, 3
		    sltui r1, r2, 3
		    muli r1, r2, 3
		    ldi r1, 5
		    ldih r1, 5
		    li  r1, 6
		    la  r1, l
		    mov r1, r2
		    ld  r1, 4(r2)
		    ld  r1, (r2)
		    st  r1, -4(sp)
		    beq r1, r2, l
		    bne r1, r2, l
		    blt r1, r2, l
		    bge r1, r2, l
		    bltu r1, r2, l
		    bgeu r1, r2, l
		    beqz r1, l
		    bnez r1, l
		    jal ra, l
		    jalr zero, ra, 0
		    j   l
		    jr  ra
		    call l
		    ret
		    nop
		    fork l+2
		    halt 3
		    halt
	`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code.Words) != 49 {
		t.Errorf("emitted %d words, want 49", len(p.Code.Words))
	}
	// Spot-check pseudo-expansions.
	if in := p.InstAt(p.MustSymbol("l") + 27); in.Op != isa.OpAddi || in.Rd != 1 || in.Rs1 != 2 || in.Imm != 0 {
		t.Errorf("mov expansion = %v", in)
	}
	if in := p.InstAt(p.MustSymbol("l") + 45); in.Op != isa.OpNop {
		t.Errorf("nop = %v", in)
	}
	if in := p.InstAt(p.MustSymbol("l") + 46); in.Op != isa.OpFork || in.Imm != int64(p.MustSymbol("l")+2) {
		t.Errorf("fork with label arithmetic = %v", in)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":    "frobnicate r1",
		"bad register":        "add r1, r2, r99",
		"bad register alias":  "add r1, r2, bogus",
		"missing operand":     "add r1, r2",
		"undefined symbol":    "j nowhere",
		"duplicate label":     "a: nop\na: nop",
		"imm out of range":    "ldi r1, 0x100000000",
		"bad displacement":    "ld r1, r2",
		"data op in code":     ".word 5",
		"inst in data":        ".data\nnop",
		"org after emit":      "nop\n.org 5",
		"duplicate org":       ".org 1\n.org 2",
		"bad org":             ".org banana",
		"bad space":           ".data\n.space banana",
		"empty label":         ": nop",
		"undefined entry":     ".entry nope\nnop",
		"entry wants a label": ".entry\nnop",
		"org wants one arg":   ".org 1, 2",
		"halt extra args":     "halt 1, 2",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: assembled without error:\n%s", name, src)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus r1\n")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q lacks line number", err)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p, err := Assemble(`
		# full-line comment
		; alternative comment leader

		nop   # trailing
		halt  ; trailing
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code.Words) != 2 {
		t.Errorf("words = %d, want 2", len(p.Code.Words))
	}
}

func TestCodeOrg(t *testing.T) {
	p, err := Assemble(`
		.org 100
		start: j start
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Code.Base != 100 || p.Entry != 100 {
		t.Errorf("base=%d entry=%d, want 100", p.Code.Base, p.Entry)
	}
	if in := p.InstAt(100); in.Imm != 100 {
		t.Errorf("label resolved to %d, want 100", in.Imm)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble should panic on bad source")
		}
	}()
	MustAssemble("bogus")
}

func TestLabelMinusOffset(t *testing.T) {
	p, err := Assemble(`
		a: nop
		b: la r1, b-1
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if in := p.InstAt(p.MustSymbol("b")); in.Imm != int64(p.MustSymbol("a")) {
		t.Errorf("b-1 = %d, want %d", in.Imm, p.MustSymbol("a"))
	}
}
