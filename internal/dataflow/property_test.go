package dataflow_test

import (
	"testing"

	"mssp/internal/cfg"
	"mssp/internal/chaos"
	"mssp/internal/cpu"
	"mssp/internal/dataflow"
	"mssp/internal/isa"
	"mssp/internal/state"
)

// The property tests run every analysis against ground truth: a traced
// sequential execution of chaos-generated programs. Static may-facts must
// over-approximate what one concrete run actually did; a single violated
// step is an unsoundness bug in an analysis, not test flake, because both
// sides are deterministic.

const propTraceCap = 60000

// traceStep records one executed instruction with the registers its
// semantics actually read and wrote.
type traceStep struct {
	pc     uint64
	reads  dataflow.RegSet
	writes dataflow.RegSet
	// stack is the call-site pc of every active frame at the time this step
	// executed, outermost first, paired with a per-invocation id so two
	// calls through the same site are distinguishable.
	stack []frameRef
}

type frameRef struct {
	callPC uint64
	id     int
}

// traceEnv wraps an Env and records register traffic per step.
type traceEnv struct {
	cpu.StateEnv
	reads, writes dataflow.RegSet
}

func (e *traceEnv) ReadReg(r int) uint64 {
	e.reads = e.reads.Add(uint8(r))
	return e.StateEnv.ReadReg(r)
}

func (e *traceEnv) WriteReg(r int, v uint64) {
	e.writes = e.writes.Add(uint8(r))
	e.StateEnv.WriteReg(r, v)
}

// collectTrace runs prog sequentially, recording per-step register traffic
// and call stacks. Programs with indirect jumps are the caller's problem:
// the stack tracking assumes jalr only appears as a return.
func collectTrace(t *testing.T, g *cfg.Graph, regSnaps *[][isa.NumRegs]uint64) []traceStep {
	t.Helper()
	s := state.NewFromProgram(g.Prog, 1<<28)
	env := &traceEnv{StateEnv: cpu.StateEnv{S: s}}

	var steps []traceStep
	var stack []frameRef
	nextID := 0
	for len(steps) < propTraceCap {
		pc := s.PC
		if regSnaps != nil {
			*regSnaps = append(*regSnaps, s.Regs)
		}
		env.reads, env.writes = 0, 0
		in, err := cpu.Step(env)
		if err != nil {
			t.Fatalf("trace fault at pc %d: %v", pc, err)
		}
		st := traceStep{pc: pc, reads: env.reads, writes: env.writes}
		st.stack = append(st.stack, stack...)
		steps = append(steps, st)
		if in.Op == isa.OpHalt {
			return steps
		}
		switch {
		case dataflow.IsCall(in):
			stack = append(stack, frameRef{callPC: pc, id: nextID})
			nextID++
		case in.Op == isa.OpJalr:
			if len(stack) == 0 {
				t.Fatalf("return with empty call stack at pc %d", pc)
			}
			stack = stack[:len(stack)-1]
		}
	}
	t.Fatalf("program did not halt within %d steps", propTraceCap)
	return nil
}

// plainCorpus yields chaos programs without indirect jumps, with their CFGs.
func plainCorpus(t *testing.T, seeds int) []*cfg.Graph {
	t.Helper()
	var out []*cfg.Graph
	for seed := 1; seed <= seeds; seed++ {
		gen := chaos.Generate(uint64(seed))
		g, err := cfg.Build(gen.Prog)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !g.HasIndirect {
			out = append(out, g)
		}
	}
	// The checks below are vacuous on an empty corpus; the generator must
	// keep producing a healthy share of statically analyzable programs.
	if len(out) < seeds/4 {
		t.Fatalf("only %d/%d chaos programs are indirect-free; corpus too thin", len(out), seeds)
	}
	return out
}

func corpusSize(t *testing.T) int {
	if testing.Short() {
		return 20
	}
	return 80
}

// TestLivenessCoversTrace checks the defining property of may-liveness
// against ground truth: walking the trace backward, any register that will
// be read again before being overwritten must be in the static live set at
// every intermediate step.
func TestLivenessCoversTrace(t *testing.T) {
	for i, g := range plainCorpus(t, corpusSize(t)) {
		steps := collectTrace(t, g, nil)
		lf := dataflow.Live(g, dataflow.LivenessOptions{})
		var dynLive dataflow.RegSet
		for j := len(steps) - 1; j >= 0; j-- {
			st := steps[j]
			dynLive = dynLive&^st.writes | st.reads
			if got := lf.Before(st.pc); dynLive&^got != 0 {
				t.Fatalf("corpus[%d] step %d pc %d: dynamically live %v not in static %v",
					i, j, st.pc, dynLive, got)
			}
		}
	}
}

// TestReachingCoversTrace checks reaching definitions against ground truth:
// for every dynamic read, the def site that actually produced the value must
// be in the static may-reach set — where a def made in a frame the reader
// has since left is attributed to the call site that encloses it, because
// the analysis models callees by call-site summary.
func TestReachingCoversTrace(t *testing.T) {
	for i, g := range plainCorpus(t, corpusSize(t)) {
		steps := collectTrace(t, g, nil)
		rf := dataflow.Reaching(g)

		type lastDef struct {
			pc    uint64
			stack []frameRef
			valid bool
		}
		var last [isa.NumRegs]lastDef
		for j, st := range steps {
			for r := uint8(1); r < isa.NumRegs; r++ {
				if !st.reads.Has(r) {
					continue
				}
				ld := last[r]
				if !ld.valid {
					if !rf.EntryReachesBefore(st.pc, r) {
						t.Fatalf("corpus[%d] step %d pc %d: r%d read its entry value but entry does not statically reach",
							i, j, st.pc, r)
					}
					continue
				}
				// Longest common prefix of frame instances between writer
				// and reader decides attribution: a def from an exited
				// frame is visible only through its enclosing call site.
				k := 0
				for k < len(ld.stack) && k < len(st.stack) && ld.stack[k].id == st.stack[k].id {
					k++
				}
				site := ld.pc
				if k < len(ld.stack) {
					site = ld.stack[k].callPC
				}
				if !rf.ReachesBefore(st.pc, r, site) {
					t.Fatalf("corpus[%d] step %d pc %d: r%d written at pc %d (site %d) but site does not statically reach",
						i, j, st.pc, r, ld.pc, site)
				}
			}
			for r := uint8(1); r < isa.NumRegs; r++ {
				if st.writes.Has(r) {
					last[r] = lastDef{pc: st.pc, stack: st.stack, valid: true}
				}
			}
		}
	}
}

// TestMayInitCoversTrace checks that every register actually written before
// a step is in the static may-initialized set there.
func TestMayInitCoversTrace(t *testing.T) {
	for i, g := range plainCorpus(t, corpusSize(t)) {
		steps := collectTrace(t, g, nil)
		mi := dataflow.MayInit(g, dataflow.RegSet(0).Add(uint8(isa.RegSP)))
		var written dataflow.RegSet
		for j, st := range steps {
			if written&^mi.Before(st.pc) != 0 {
				t.Fatalf("corpus[%d] step %d pc %d: dynamically written %v not in may-init %v",
					i, j, st.pc, written, mi.Before(st.pc))
			}
			written = written.Union(st.writes)
		}
	}
}

// TestConstsCoverTrace checks conditional constant propagation against
// ground truth: whenever the analysis claims a register holds an exact
// constant before an instruction, the traced machine's register must hold
// exactly that value, and every executed block must be marked executable.
func TestConstsCoverTrace(t *testing.T) {
	for i, g := range plainCorpus(t, corpusSize(t)) {
		var snaps [][isa.NumRegs]uint64
		steps := collectTrace(t, g, &snaps)
		cf := dataflow.Consts(g, dataflow.ConstOptions{})
		for j, st := range steps {
			if !cf.Executed(st.pc) {
				t.Fatalf("corpus[%d] step %d: pc %d executed but statically infeasible", i, j, st.pc)
			}
			for r := uint8(1); r < isa.NumRegs; r++ {
				if v, ok := cf.Before(st.pc, r).Value(); ok && snaps[j][r] != v {
					t.Fatalf("corpus[%d] step %d pc %d: r%d = %d but analysis claims constant %d",
						i, j, st.pc, r, snaps[j][r], v)
				}
			}
		}
	}
}
