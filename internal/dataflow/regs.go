package dataflow

import (
	"fmt"
	"strings"

	"mssp/internal/isa"
)

// RegSet is a bitset over the 32 MIR registers. Register 0 is hardwired to
// zero, so it never appears in use or live sets: reading it is not a data
// dependence and writing it has no effect.
type RegSet uint32

// AllRegs is the set of every register that can carry a value (r1..r31).
const AllRegs RegSet = 0xfffffffe

// Has reports whether register r is in the set.
func (s RegSet) Has(r uint8) bool { return s&(1<<r) != 0 }

// Add returns the set with register r added. Adding r0 is a no-op.
func (s RegSet) Add(r uint8) RegSet {
	if r == isa.RegZero {
		return s
	}
	return s | 1<<r
}

// Remove returns the set with register r removed.
func (s RegSet) Remove(r uint8) RegSet { return s &^ (1 << r) }

// Union returns the union of the two sets.
func (s RegSet) Union(t RegSet) RegSet { return s | t }

// Count returns the number of registers in the set.
func (s RegSet) Count() int {
	n := 0
	for v := uint32(s); v != 0; v &= v - 1 {
		n++
	}
	return n
}

// String renders the set as "{r3 r7 r31}".
func (s RegSet) String() string {
	var parts []string
	for r := uint8(0); r < isa.NumRegs; r++ {
		if s.Has(r) {
			parts = append(parts, fmt.Sprintf("r%d", r))
		}
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// IsCall reports whether the instruction is a call: a control transfer that
// records a return address. Calls transfer into code the intraprocedural
// analyses do not trace instruction-by-instruction (the callee is entered and
// left through link-register conventions), so the analyses treat them as
// summaries: a call may read and may write any register.
func IsCall(in isa.Inst) bool {
	return (in.Op == isa.OpJal || in.Op == isa.OpJalr) && in.Rd != isa.RegZero
}

// Uses returns the registers the instruction reads. r0 reads are excluded
// (they are the constant zero, not a dependence). Calls conservatively read
// every register: the callee's reads are summarized into the call site.
func Uses(in isa.Inst) RegSet {
	if IsCall(in) {
		return AllRegs
	}
	var s RegSet
	if in.Op.ReadsRs1() {
		s = s.Add(in.Rs1)
	}
	if in.Op.ReadsRs2() {
		s = s.Add(in.Rs2)
	}
	if in.Op == isa.OpJalr { // jump base
		s = s.Add(in.Rs1)
	}
	return s
}

// Def returns the register the instruction writes and whether it writes one.
// Writes to r0 are discarded by the machine and reported as no def.
func Def(in isa.Inst) (uint8, bool) {
	if !in.Op.HasRd() || in.Rd == isa.RegZero {
		return 0, false
	}
	return in.Rd, true
}
