package dataflow

import (
	"mssp/internal/cfg"
	"mssp/internal/isa"
)

// Const is a value in the three-point constant lattice: Unknown (no
// executable path has produced a value yet), an exact constant, or Varying
// (conflicting or unanalyzable values). Facts only descend
// Unknown → constant → Varying, which is what guarantees termination.
type Const struct {
	kind uint8 // 0 = unknown, 1 = constant, 2 = varying
	val  uint64
}

const (
	constUnknown = iota
	constValue
	constVarying
)

// Varying is the lattice bottom: the register's value differs across paths
// or is unanalyzable.
var Varying = Const{kind: constVarying}

// ConstOf returns the lattice element for an exact value.
func ConstOf(v uint64) Const { return Const{kind: constValue, val: v} }

// Value returns the exact constant and whether the element is one.
func (c Const) Value() (uint64, bool) { return c.val, c.kind == constValue }

// meet combines two lattice elements.
func meet(a, b Const) Const {
	switch {
	case a.kind == constUnknown:
		return b
	case b.kind == constUnknown:
		return a
	case a.kind == constValue && b.kind == constValue && a.val == b.val:
		return a
	default:
		return Varying
	}
}

// Regs is a register file over the constant lattice.
type Regs [isa.NumRegs]Const

// get reads a register; r0 is the constant zero.
func (v *Regs) get(r uint8) Const {
	if r == isa.RegZero {
		return ConstOf(0)
	}
	return v[r]
}

func (v *Regs) set(r uint8, c Const) {
	if r != isa.RegZero {
		v[r] = c
	}
}

// Equality is a register-equality assumption rs1 == rs2 holding immediately
// after the instruction at its program counter — the residue of a pruned
// biased branch, supplied by the distiller as an (unsound, verified-later)
// seed fact.
type Equality struct {
	// Rs1 and Rs2 are the registers assumed equal.
	Rs1, Rs2 uint8
}

// ConstOptions configures constant propagation.
type ConstOptions struct {
	// Roots are program counters treated as alternate entry points with
	// fully unknown (Varying) register state. The distiller passes every
	// fork anchor: the master can be reseeded at any anchor with
	// architected register values the analysis cannot see.
	Roots []uint64
	// Assume maps an instruction's program counter to an equality that
	// holds immediately after it. Assumptions are refinements: when one
	// side is a known constant the other side adopts it.
	Assume map[uint64]Equality
	// EntryVarying, when true, treats the program entry's registers as
	// Varying rather than the architectural zeros. The distiller sets it:
	// a distilled program starts from arbitrary architected state.
	EntryVarying bool
}

// ConstFacts is a solved conditional-constant-propagation analysis.
type ConstFacts struct {
	g      *cfg.Graph
	base   uint64
	before []Regs
	// executed marks blocks some feasible path reaches. Facts in
	// unexecuted blocks are meaningless (all Unknown) and must not drive
	// rewrites.
	executed map[uint64]bool
}

// Consts runs conditional constant propagation: blocks become executable
// only when a feasible edge reaches them, and a conditional branch with
// exactly-known operands makes only its actual successor feasible.
func Consts(g *cfg.Graph, opts ConstOptions) *ConstFacts {
	f := &ConstFacts{
		g:        g,
		base:     g.Prog.Code.Base,
		before:   make([]Regs, len(g.Prog.Code.Words)),
		executed: make(map[uint64]bool, len(g.Blocks)),
	}

	// An indirect jump can land on any instruction, including mid-block, so
	// no register is a provable constant anywhere and every block may run.
	if g.HasIndirect {
		var allVarying Regs
		for r := 1; r < isa.NumRegs; r++ {
			allVarying[r] = Varying
		}
		for i := range f.before {
			f.before[i] = allVarying
		}
		for _, b := range g.Blocks {
			f.executed[b.Start] = true
		}
		return f
	}

	in := make(map[uint64]*Regs, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b.Start] = &Regs{}
	}

	var queue []uint64
	queued := make(map[uint64]bool)
	push := func(s uint64) {
		if !queued[s] {
			queued[s] = true
			queue = append(queue, s)
		}
	}

	// mergeInto folds vals into the block's IN fact, marking it executable
	// and requeueing it on any change.
	mergeInto := func(s uint64, vals *Regs) {
		dst := in[s]
		changed := !f.executed[s]
		f.executed[s] = true
		for r := 1; r < isa.NumRegs; r++ {
			m := meet(dst[r], vals[r])
			if m != dst[r] {
				dst[r] = m
				changed = true
			}
		}
		if changed {
			push(s)
		}
	}

	varying := &Regs{}
	for r := 1; r < isa.NumRegs; r++ {
		varying[r] = Varying
	}

	entryVals := &Regs{}
	if opts.EntryVarying {
		*entryVals = *varying
	} else {
		// Architectural start: every register zero except the runtime-
		// seeded stack pointer.
		for r := uint8(1); r < isa.NumRegs; r++ {
			entryVals.set(r, ConstOf(0))
		}
		entryVals.set(isa.RegSP, Varying)
	}
	mergeInto(g.BlockFor(g.Prog.Entry).Start, entryVals)
	// A root is an alternate entry with arbitrary register state. It may sit
	// mid-block, so the poison is applied at its exact pc during the block
	// walk below; here the containing block only becomes executable.
	rootPC := make(map[uint64]bool, len(opts.Roots))
	for _, root := range opts.Roots {
		if b := g.BlockFor(root); b != nil {
			rootPC[root] = true
			mergeInto(b.Start, &Regs{})
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		queued[s] = false
		b := g.ByStart[s]

		vals := *in[s]
		for pc := b.Start; pc < b.End; pc++ {
			if rootPC[pc] {
				vals = *varying
			}
			f.before[pc-f.base] = vals
			stepConst(g.Prog.InstAt(pc), &vals)
			if eq, ok := opts.Assume[pc]; ok {
				applyAssume(&vals, eq)
			}
		}

		// Propagate along feasible out-edges.
		term := g.Prog.InstAt(b.End - 1)
		if term.Op.IsBranch() {
			a, aok := vals.get(term.Rs1).Value()
			c, cok := vals.get(term.Rs2).Value()
			if aok && cok {
				// Branch targets are absolute; the not-taken edge falls
				// through to the next block.
				target := b.End
				if evalBranch(term.Op, a, c) {
					target = uint64(term.Imm)
				}
				for _, succ := range b.Succs {
					if succ == target {
						mergeInto(succ, &vals)
					}
				}
				continue
			}
		}
		for _, succ := range b.Succs {
			mergeInto(succ, &vals)
		}
	}
	return f
}

// applyAssume refines the fact with an equality: if exactly one side is a
// known constant, the other side adopts it.
func applyAssume(vals *Regs, eq Equality) {
	c1, ok1 := vals.get(eq.Rs1).Value()
	c2, ok2 := vals.get(eq.Rs2).Value()
	switch {
	case ok1 && !ok2:
		vals.set(eq.Rs2, ConstOf(c1))
	case ok2 && !ok1:
		vals.set(eq.Rs1, ConstOf(c2))
	}
}

// stepConst applies one instruction's effect on the constant register file.
func stepConst(in isa.Inst, vals *Regs) {
	if IsCall(in) {
		// Callee summary: everything may change.
		for r := uint8(1); r < isa.NumRegs; r++ {
			vals.set(r, Varying)
		}
		return
	}
	d, ok := Def(in)
	if !ok {
		return
	}
	switch in.Op {
	case isa.OpLdi:
		vals.set(d, ConstOf(uint64(in.Imm)))
	case isa.OpLdih:
		if low, ok := vals.get(in.Rs1).Value(); ok {
			vals.set(d, ConstOf(uint64(in.Imm)<<32|low&0xffffffff))
		} else {
			vals.set(d, Varying)
		}
	case isa.OpLd, isa.OpJal, isa.OpJalr:
		vals.set(d, Varying)
	default:
		a, aok := vals.get(in.Rs1).Value()
		b := uint64(in.Imm)
		bok := true
		if in.Op.ReadsRs2() {
			b, bok = vals.get(in.Rs2).Value()
		}
		if aok && bok {
			if v, ok := evalALU(in.Op, a, b); ok {
				vals.set(d, ConstOf(v))
				return
			}
		}
		vals.set(d, Varying)
	}
}

// evalALU mirrors the interpreter's ALU semantics exactly (wrapping
// arithmetic, mod-64 shifts, trap-free division).
func evalALU(op isa.Op, a, b uint64) (uint64, bool) {
	switch op {
	case isa.OpAdd, isa.OpAddi:
		return a + b, true
	case isa.OpSub:
		return a - b, true
	case isa.OpMul, isa.OpMuli:
		return a * b, true
	case isa.OpDiv:
		switch {
		case b == 0:
			return ^uint64(0), true
		case int64(a) == -1<<63 && int64(b) == -1:
			return a, true
		}
		return uint64(int64(a) / int64(b)), true
	case isa.OpRem:
		switch {
		case b == 0:
			return a, true
		case int64(a) == -1<<63 && int64(b) == -1:
			return 0, true
		}
		return uint64(int64(a) % int64(b)), true
	case isa.OpAnd, isa.OpAndi:
		return a & b, true
	case isa.OpOr, isa.OpOri:
		return a | b, true
	case isa.OpXor, isa.OpXori:
		return a ^ b, true
	case isa.OpSll, isa.OpSlli:
		return a << (b & 63), true
	case isa.OpSrl, isa.OpSrli:
		return a >> (b & 63), true
	case isa.OpSra, isa.OpSrai:
		return uint64(int64(a) >> (b & 63)), true
	case isa.OpSlt, isa.OpSlti:
		if int64(a) < int64(b) {
			return 1, true
		}
		return 0, true
	case isa.OpSltu, isa.OpSltui:
		if a < b {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// evalBranch mirrors the interpreter's branch comparisons.
func evalBranch(op isa.Op, a, b uint64) bool {
	switch op {
	case isa.OpBeq:
		return a == b
	case isa.OpBne:
		return a != b
	case isa.OpBlt:
		return int64(a) < int64(b)
	case isa.OpBge:
		return int64(a) >= int64(b)
	case isa.OpBltu:
		return a < b
	case isa.OpBgeu:
		return a >= b
	}
	return false
}

// Executed reports whether any feasible path reaches the block containing
// pc. Facts in unexecuted code are vacuous and must not drive rewrites.
func (f *ConstFacts) Executed(pc uint64) bool {
	b := f.g.BlockFor(pc)
	return b != nil && f.executed[b.Start]
}

// Before returns the constant-lattice value of register r immediately
// before the instruction at pc.
func (f *ConstFacts) Before(pc uint64, r uint8) Const {
	if r == isa.RegZero {
		return ConstOf(0)
	}
	return f.before[pc-f.base][r]
}

// ResultAt returns the exact constant the instruction at pc computes into
// its destination register, if the analysis proves one on every feasible
// path reaching it. Only pure register-writing instructions qualify (loads,
// calls and control transfers never do).
func (f *ConstFacts) ResultAt(pc uint64) (reg uint8, val uint64, ok bool) {
	if !f.Executed(pc) {
		return 0, 0, false
	}
	in := f.g.Prog.InstAt(pc)
	d, okd := Def(in)
	if !okd || IsCall(in) || in.Op == isa.OpLd || in.Op == isa.OpJal || in.Op == isa.OpJalr {
		return 0, 0, false
	}
	vals := f.before[pc-f.base]
	stepConst(in, &vals)
	v, okv := vals.get(d).Value()
	return d, v, okv
}
