package dataflow

import (
	"testing"

	"mssp/internal/isa"
)

var testSecret = []isa.Region{{Lo: 4096 + 64, Hi: 4096 + 65}}

const taintTestData = `
		.data
		.org 4096
	arr:	.space 64
	secret:	.word 42
		.code
`

func TestTaintStraightLine(t *testing.T) {
	g := mustGraph(t, taintTestData+`
	main:	ldi r1, 4160
		ld  r2, 0(r1)
		add r3, r2, r2
		ldi r2, 0
		halt
	`)
	tf := Taint(g, TaintOptions{Secret: testSecret})
	if got := tf.Before(pcOf(1)); got != 0 {
		t.Fatalf("nothing tainted before the secret load, got %v", got)
	}
	if !tf.SourceAt(pcOf(1)) {
		t.Fatal("ld from the secret region must be a source")
	}
	if got := tf.Before(pcOf(2)); !got.Has(2) {
		t.Fatalf("r2 tainted after the secret load, got %v", got)
	}
	if got := tf.Before(pcOf(3)); !got.Has(3) {
		t.Fatalf("taint must propagate through ALU ops, got %v", got)
	}
	// The ldi at pc 3 scrubs r2; r3 stays tainted.
	if got := tf.Before(pcOf(4)); got.Has(2) || !got.Has(3) {
		t.Fatalf("ldi must untaint r2 and leave r3, got %v", got)
	}
}

func TestTaintRangeExcludesSecret(t *testing.T) {
	// The load address is provably arr[0..63]: the andi bounds the index
	// into the public array, so even though the same base register also
	// reaches the secret word's page, the span analysis keeps it clean.
	g := mustGraph(t, taintTestData+`
	main:	ldi  r1, 4096
		ld   r2, 0(r1)
		andi r2, r2, 63
		add  r3, r1, r2
		ld   r4, 0(r3)
		halt
	`)
	tf := Taint(g, TaintOptions{Secret: testSecret})
	if got := tf.Before(pcOf(5)); got.Has(4) {
		t.Fatalf("in-bounds public load must stay clean, got %v", got)
	}
	// Without the mask the computed address may reach the secret word, so
	// the load must conservatively taint.
	g2 := mustGraph(t, taintTestData+`
	main:	ldi  r1, 4096
		ld   r2, 0(r1)
		add  r3, r1, r2
		ld   r4, 0(r3)
		halt
	`)
	tf2 := Taint(g2, TaintOptions{Secret: testSecret})
	if got := tf2.Before(pcOf(4)); !got.Has(4) {
		t.Fatalf("unbounded indexed load may read the secret, got %v", got)
	}
}

func TestTaintMemoryRoundTrip(t *testing.T) {
	g := mustGraph(t, taintTestData+`
	main:	ldi r1, 4160
		ld  r2, 0(r1)
		ldi r3, 4096
		st  r2, 0(r3)
		ldi r2, 0
		ld  r4, 0(r3)
		halt
	`)
	tf := Taint(g, TaintOptions{Secret: testSecret})
	if got := tf.Before(pcOf(6)); !got.Has(4) {
		t.Fatalf("taint must survive a store/load round trip, got %v", got)
	}
}

func TestTaintBranchJoin(t *testing.T) {
	// Taint on one arm of a diamond must survive the join.
	g := mustGraph(t, taintTestData+`
	main:	ldi  r1, 4160
		beqz r5, other
		ld   r2, 0(r1)
		j    join
	other:	ldi  r2, 7
	join:	add  r3, r2, r2
		halt
	`)
	tf := Taint(g, TaintOptions{Secret: testSecret})
	if got := tf.Before(pcOf(6)); !got.Has(3) {
		t.Fatalf("taint must survive the join, got %v", got)
	}
}

func TestTaintRootsJoinNotReset(t *testing.T) {
	// A root pc joins an untainted flow into the incoming facts — it must
	// NOT reset them: a task may span several anchors, so taint arriving at
	// an anchor is still live for the rest of the task.
	g := mustGraph(t, taintTestData+`
	main:	ldi r1, 4160
		ld  r2, 0(r1)
	anchor:	add r3, r2, r2
		halt
	`)
	tf := Taint(g, TaintOptions{Secret: testSecret, Roots: []uint64{pcOf(2)}})
	if got := tf.Before(pcOf(2)); !got.Has(2) {
		t.Fatalf("root must join, not clear, incoming taint: %v", got)
	}
	if got := tf.Before(pcOf(3)); !got.Has(3) {
		t.Fatalf("taint must keep flowing past the root, got %v", got)
	}
}

func TestTaintUnreachableCode(t *testing.T) {
	g := mustGraph(t, taintTestData+`
	main:	halt
	dead:	ldi r1, 4160
		ld  r2, 0(r1)
		halt
	`)
	tf := Taint(g, TaintOptions{Secret: testSecret})
	if tf.Reachable(pcOf(2)) {
		t.Fatal("dead code must be unreachable")
	}
	// Rooting the dead block makes it reachable and tainted.
	tf = Taint(g, TaintOptions{Secret: testSecret, Roots: []uint64{pcOf(1)}})
	if !tf.Reachable(pcOf(2)) || !tf.Before(pcOf(3)).Has(2) {
		t.Fatal("rooted block must be analyzed")
	}
}

// TestTaintIndirectShortCircuitsToTop is the satellite contract: a jalr can
// land at ANY instruction — including the middle of a basic block — so no
// per-block dataflow can bound where tainted state enters. The analysis must
// short-circuit the whole lattice to top: every register tainted at every
// reachable pc, and every load a potential source.
func TestTaintIndirectShortCircuitsToTop(t *testing.T) {
	g := mustGraph(t, taintTestData+`
	main:	la   r1, mid
		jr   r1
		ldi  r2, 1
	entry:	ldi  r3, 4096
	mid:	addi r3, r3, 4
		ld   r4, 0(r3)
		halt
	`)
	if !g.HasIndirect {
		t.Fatal("test program must contain an indirect jump")
	}
	// The jalr target (mid) is the middle of the entry:/mid: straight-line
	// run — a mid-block entry no block-granular analysis can represent.
	tf := Taint(g, TaintOptions{Secret: testSecret})
	for pc := uint64(0); pc < uint64(7); pc++ {
		if !tf.Reachable(pc) {
			t.Fatalf("pc %d must be reachable under indirection", pc)
		}
		if got := tf.Before(pc); got != AllRegs {
			t.Fatalf("taint must be top (AllRegs) everywhere under indirection; pc %d: %v", pc, got)
		}
	}
	// Loads are sources under top — the address may point anywhere — and
	// non-loads are not, keeping SourceAt meaningful for diagnostics.
	if !tf.SourceAt(pcOf(5)) {
		t.Fatal("the ld must be a potential source under indirection")
	}
	if tf.SourceAt(pcOf(4)) {
		t.Fatal("an addi is not a source even under indirection")
	}
}

func TestTaintNoSecretsClean(t *testing.T) {
	g := mustGraph(t, taintTestData+`
	main:	ldi r1, 4160
		ld  r2, 0(r1)
		halt
	`)
	tf := Taint(g, TaintOptions{})
	for pc := uint64(0); pc < 3; pc++ {
		if tf.Before(pc) != 0 || tf.SourceAt(pc) {
			t.Fatalf("no declared secrets: everything clean, pc %d", pc)
		}
	}
}

func TestTaintCallConservative(t *testing.T) {
	g := mustGraph(t, taintTestData+`
	main:	call fn
		add  r3, r2, r2
		halt
	fn:	ldi  r2, 1
		ret
	`)
	tf := Taint(g, TaintOptions{Secret: testSecret})
	if got := tf.Before(pcOf(1)); got != AllRegs {
		t.Fatalf("a call may return anything: want AllRegs after it, got %v", got)
	}
}
