package dataflow

import (
	"testing"

	"mssp/internal/asm"
	"mssp/internal/cfg"
	"mssp/internal/isa"
)

func mustGraph(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	g, err := cfg.Build(asm.MustAssemble(src))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// pcOf returns the address of the nth instruction (0-based) of the code
// segment, which in these tests starts at 0.
func pcOf(n int) uint64 { return uint64(n) }

func TestRegSetBasics(t *testing.T) {
	var s RegSet
	s = s.Add(3).Add(31).Add(0) // r0 must be ignored
	if !s.Has(3) || !s.Has(31) || s.Has(0) || s.Count() != 2 {
		t.Fatalf("set ops wrong: %v count=%d", s, s.Count())
	}
	if AllRegs.Has(0) || AllRegs.Count() != isa.NumRegs-1 {
		t.Fatalf("AllRegs must hold r1..r31: count=%d", AllRegs.Count())
	}
	if s.Remove(3).Has(3) {
		t.Fatal("Remove failed")
	}
}

func TestLivenessStraightLine(t *testing.T) {
	g := mustGraph(t, `
		ldi r1, 5
		add r2, r1, r1    # dead: overwritten before any read
		ldi r2, 7
		ldi r3, 100
		st  r2, 0(r3)
		halt
	`)
	lf := Live(g, LivenessOptions{})
	if !lf.DeadDef(pcOf(1)) {
		t.Error("add r2 should be a dead def")
	}
	if lf.DeadDef(pcOf(2)) {
		t.Error("ldi r2, 7 is read by the store; not dead")
	}
	if !lf.Before(pcOf(4)).Has(2) || !lf.Before(pcOf(4)).Has(3) {
		t.Errorf("store operands must be live before it: %v", lf.Before(pcOf(4)))
	}
	if lf.Before(pcOf(0)).Has(1) {
		t.Error("r1 must not be live before its own first def")
	}
}

func TestLivenessAtPCInjection(t *testing.T) {
	src := `
		ldi r1, 5
		add r2, r1, r1
		ldi r2, 7
		halt
	`
	g := mustGraph(t, src)
	plain := Live(g, LivenessOptions{})
	if !plain.DeadDef(pcOf(1)) {
		t.Fatal("without injection add r2 is dead")
	}
	// A checkpoint immediately before the overwriting ldi observes r2.
	inj := Live(g, LivenessOptions{AtPC: func(pc uint64) RegSet {
		if pc == pcOf(2) {
			return RegSet(0).Add(2)
		}
		return 0
	}})
	if inj.DeadDef(pcOf(1)) {
		t.Error("checkpoint use at pc 2 must keep add r2 alive")
	}
	if !inj.Before(pcOf(2)).Has(2) {
		t.Error("injected use must appear in the Before fact at its pc")
	}
}

func TestLivenessBranchAndExit(t *testing.T) {
	g := mustGraph(t, `
		        ldi  r1, 1
		        ldi  r2, 2
		        beqz r3, skip
		        add  r4, r1, r1   # r1 read only on this arm
		skip:   add  r5, r2, r2
		        halt
	`)
	lf := Live(g, LivenessOptions{})
	if !lf.Before(pcOf(2)).Has(1) || !lf.Before(pcOf(2)).Has(2) || !lf.Before(pcOf(2)).Has(3) {
		t.Errorf("branch point must see r1, r2, r3 live: %v", lf.Before(pcOf(2)))
	}
	// r4 and r5 are never read and ExitLive is empty.
	if !lf.DeadDef(pcOf(3)) || !lf.DeadDef(pcOf(4)) {
		t.Error("results never read before an empty exit must be dead")
	}
	exit := Live(g, LivenessOptions{ExitLive: RegSet(0).Add(5)})
	if exit.DeadDef(pcOf(4)) {
		t.Error("ExitLive must keep the r5 def alive")
	}
	if !exit.DeadDef(pcOf(3)) {
		t.Error("ExitLive for r5 must not resurrect r4")
	}
}

func TestLivenessReturnBoundary(t *testing.T) {
	g := mustGraph(t, `
		.entry main
		f:      ldi r5, 9
		        ret
		main:   call f
		        halt
	`)
	lf := Live(g, LivenessOptions{})
	if lf.DeadDef(pcOf(0)) {
		t.Error("defs before a return must be live: the caller may read them")
	}
	// Before a call everything is live (callee summary reads everything).
	if got := lf.Before(pcOf(2)); got != AllRegs {
		t.Errorf("live before call = %v, want AllRegs", got)
	}
}

func TestReachingDiamond(t *testing.T) {
	g := mustGraph(t, `
		        beqz r4, else
		        ldi  r2, 5
		        j    join
		else:   ldi  r2, 6
		join:   add  r3, r2, r2
		        halt
	`)
	rf := Reaching(g)
	join := pcOf(4)
	sites, entry := rf.DefsBefore(join, 2)
	if len(sites) != 2 {
		t.Fatalf("both arm defs must reach the join, got %v", sites)
	}
	if entry {
		t.Error("every path defines r2; the entry value must not reach the join")
	}
	if !rf.EntryReachesBefore(join, 4) {
		t.Error("r4 is never written; its entry value must reach everywhere")
	}
	if !rf.ReachesBefore(join, 2, pcOf(1)) || !rf.ReachesBefore(join, 2, pcOf(3)) {
		t.Error("ReachesBefore must confirm both arm defs")
	}
	if rf.ReachesBefore(pcOf(3), 2, pcOf(1)) {
		t.Error("the taken-arm def must not reach the other arm")
	}
}

func TestReachingCallSummary(t *testing.T) {
	g := mustGraph(t, `
		.entry main
		f:      ldi  r5, 9
		        ret
		main:   ldi  r1, 3
		        call f
		        add  r2, r1, r5
		        halt
	`)
	rf := Reaching(g)
	after := pcOf(4) // the add
	callPC := pcOf(3)

	// r1 survives the call: its def and the call's may-def both reach.
	if !rf.ReachesBefore(after, 1, pcOf(2)) || !rf.ReachesBefore(after, 1, callPC) {
		t.Error("caller def and call summary must both reach for r1")
	}
	// The callee's r5 def reaches only through the call summary site;
	// return blocks have no static successors.
	if rf.ReachesBefore(after, 5, pcOf(0)) {
		t.Error("a callee-body def must not reach the continuation directly")
	}
	if !rf.ReachesBefore(after, 5, callPC) {
		t.Error("the call summary site must stand in for callee defs")
	}
	if !rf.EntryReachesBefore(after, 5) {
		t.Error("the call only MAY define r5; the entry value still reaches")
	}
	// ra is definitely written by the call: its entry value is killed.
	if rf.EntryReachesBefore(after, uint8(isa.RegRA)) {
		t.Error("the call definitely writes ra; entry value must be killed")
	}
}

func TestMayInit(t *testing.T) {
	g := mustGraph(t, `
		        beqz r4, skip
		        ldi  r2, 5
		skip:   add  r3, r2, r0
		        halt
	`)
	f := MayInit(g, RegSet(0).Add(uint8(isa.RegSP)))
	join := pcOf(2)
	if !f.Before(join).Has(2) {
		t.Error("r2 is written on one arm: may-initialized at the join")
	}
	if f.Before(join).Has(5) {
		t.Error("r5 is never written anywhere")
	}
	if !f.Before(join).Has(uint8(isa.RegSP)) {
		t.Error("the runtime-seeded stack pointer counts as initialized")
	}
	if f.Before(pcOf(0)) != RegSet(0).Add(uint8(isa.RegSP)) {
		t.Errorf("entry fact must be exactly the seed set, got %v", f.Before(pcOf(0)))
	}
}

func TestConstsFolding(t *testing.T) {
	g := mustGraph(t, `
		ldi  r1, 5
		addi r2, r1, 3
		muli r3, r2, 10
		sub  r4, r3, r1
		halt
	`)
	cf := Consts(g, ConstOptions{})
	for _, want := range []struct {
		pc  uint64
		reg uint8
		val uint64
	}{{pcOf(1), 2, 8}, {pcOf(2), 3, 80}, {pcOf(3), 4, 75}} {
		reg, val, ok := cf.ResultAt(want.pc)
		if !ok || reg != want.reg || val != want.val {
			t.Errorf("ResultAt(%d) = (%d,%d,%v), want (%d,%d,true)",
				want.pc, reg, val, ok, want.reg, want.val)
		}
	}
	if _, _, ok := cf.ResultAt(pcOf(0)); !ok {
		t.Error("ldi itself is a provable constant")
	}
}

func TestConstsBranchFeasibility(t *testing.T) {
	g := mustGraph(t, `
		        ldi  r1, 5
		        beqz r1, dead
		        ldi  r2, 1
		        halt
		dead:   ldi  r2, 2
		        halt
	`)
	cf := Consts(g, ConstOptions{})
	if cf.Executed(pcOf(4)) {
		t.Error("the taken edge of beqz on a known non-zero is infeasible")
	}
	if !cf.Executed(pcOf(2)) {
		t.Error("the fall-through must be executable")
	}
	if reg, val, ok := cf.ResultAt(pcOf(2)); !ok || reg != 2 || val != 1 {
		t.Errorf("live arm must fold: got (%d,%d,%v)", reg, val, ok)
	}
}

func TestConstsJoin(t *testing.T) {
	// sp is Varying at entry, so both arms are feasible.
	g := mustGraph(t, `
		        beqz sp, else
		        ldi  r2, 5
		        ldi  r3, 1
		        j    join
		else:   ldi  r2, 5
		        ldi  r3, 2
		join:   addi r4, r2, 1
		        addi r5, r3, 1
		        halt
	`)
	cf := Consts(g, ConstOptions{})
	if reg, val, ok := cf.ResultAt(pcOf(6)); !ok || reg != 4 || val != 6 {
		t.Errorf("same constant on both arms must fold: (%d,%d,%v)", reg, val, ok)
	}
	if _, _, ok := cf.ResultAt(pcOf(7)); ok {
		t.Error("conflicting constants must not fold")
	}
}

func TestConstsAssume(t *testing.T) {
	g := mustGraph(t, `
		ldi  r3, 100
		ld   r1, 0(r3)
		ldi  r2, 7
		nop               # stands for a pruned beq r1, r2 (taken)
		addi r4, r1, 1
		halt
	`)
	base := Consts(g, ConstOptions{})
	if _, _, ok := base.ResultAt(pcOf(4)); ok {
		t.Fatal("without the assumption r1 is a load result: unknown")
	}
	cf := Consts(g, ConstOptions{Assume: map[uint64]Equality{pcOf(3): {Rs1: 1, Rs2: 2}}})
	if reg, val, ok := cf.ResultAt(pcOf(4)); !ok || reg != 4 || val != 8 {
		t.Errorf("assumed r1==r2==7 must fold addi to 8: (%d,%d,%v)", reg, val, ok)
	}
}

func TestConstsRootsAndEntryVarying(t *testing.T) {
	src := `
		main:   ldi  r1, 5
		loop:   addi r2, r1, 1
		        halt
	`
	g := mustGraph(t, src)
	if _, _, ok := Consts(g, ConstOptions{}).ResultAt(pcOf(1)); !ok {
		t.Fatal("without roots the addi folds")
	}
	// A reseed root at the loop header brings unknown register state.
	cf := Consts(g, ConstOptions{Roots: []uint64{pcOf(1)}})
	if _, _, ok := cf.ResultAt(pcOf(1)); ok {
		t.Error("a root at the addi must make r1 Varying there")
	}
	// EntryVarying poisons even entry-reachable zeros.
	g2 := mustGraph(t, "add r2, r1, r0\nhalt\n")
	if _, _, ok := Consts(g2, ConstOptions{}).ResultAt(pcOf(0)); !ok {
		t.Error("architectural entry zeros fold r1+r0 to 0")
	}
	if _, _, ok := Consts(g2, ConstOptions{EntryVarying: true}).ResultAt(pcOf(0)); ok {
		t.Error("EntryVarying must suppress entry-zero folding")
	}
}

func TestConstsCallClobbers(t *testing.T) {
	g := mustGraph(t, `
		.entry main
		f:      ret
		main:   ldi  r1, 3
		        call f
		        addi r2, r1, 1
		        halt
	`)
	cf := Consts(g, ConstOptions{})
	if _, _, ok := cf.ResultAt(pcOf(3)); ok {
		t.Error("a call may rewrite every register; r1 is unknown after it")
	}
}

func TestForwardAnalysesDegradeOnIndirect(t *testing.T) {
	g := mustGraph(t, `
		main:   la   r1, target
		        jr   r1
		        ldi  r2, 1
		target: ldi  r3, 5
		        addi r4, r3, 1
		        halt
	`)
	if !g.HasIndirect {
		t.Fatal("test program must contain an indirect jump")
	}
	mi := MayInit(g, 0)
	rf := Reaching(g)
	cf := Consts(g, ConstOptions{})
	for pc := uint64(0); pc < uint64(6); pc++ {
		if mi.Before(pc) != AllRegs {
			t.Fatalf("MayInit must be AllRegs everywhere, pc %d: %v", pc, mi.Before(pc))
		}
		if !rf.EntryReachesBefore(pc, 7) {
			t.Fatalf("reaching must be universal everywhere, pc %d", pc)
		}
		if !cf.Executed(pc) {
			t.Fatalf("every block may execute under indirection, pc %d", pc)
		}
	}
	// Even an in-block ldi/addi pair must not fold: a jalr can land between
	// them.
	if _, _, ok := cf.ResultAt(uint64(4)); ok {
		t.Error("constant folding must be fully disabled under indirection")
	}
}

func TestUsesAndDef(t *testing.T) {
	cases := []struct {
		in   isa.Inst
		uses RegSet
		def  uint8
		hasD bool
	}{
		{isa.Inst{Op: isa.OpAdd, Rd: 3, Rs1: 1, Rs2: 2}, RegSet(0).Add(1).Add(2), 3, true},
		{isa.Inst{Op: isa.OpAddi, Rd: 3, Rs1: 1, Imm: 4}, RegSet(0).Add(1), 3, true},
		{isa.Inst{Op: isa.OpSt, Rs1: 1, Rs2: 2}, RegSet(0).Add(1).Add(2), 0, false},
		{isa.Inst{Op: isa.OpLdi, Rd: 5, Imm: 9}, 0, 5, true},
		{isa.Inst{Op: isa.OpAdd, Rd: 0, Rs1: 1, Rs2: 2}, RegSet(0).Add(1).Add(2), 0, false},
		// A call reads and writes everything (callee summary), but its def
		// is just the link register.
		{isa.Inst{Op: isa.OpJal, Rd: uint8(isa.RegRA), Imm: 0}, AllRegs, uint8(isa.RegRA), true},
		{isa.Inst{Op: isa.OpJal, Rd: 0, Imm: 0}, 0, 0, false},
		// A return reads only ra.
		{isa.Inst{Op: isa.OpJalr, Rd: 0, Rs1: uint8(isa.RegRA)}, RegSet(0).Add(uint8(isa.RegRA)), 0, false},
	}
	for _, c := range cases {
		if got := Uses(c.in); got != c.uses {
			t.Errorf("Uses(%v) = %v, want %v", c.in, got, c.uses)
		}
		d, ok := Def(c.in)
		if ok != c.hasD || (ok && d != c.def) {
			t.Errorf("Def(%v) = (%d,%v), want (%d,%v)", c.in, d, ok, c.def, c.hasD)
		}
	}
}
