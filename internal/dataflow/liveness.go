package dataflow

import "mssp/internal/cfg"

// LivenessOptions tunes the liveness analysis.
type LivenessOptions struct {
	// AtPC, when non-nil, injects extra register uses immediately *before*
	// the instruction at a program counter. The distiller uses this to
	// model FORK checkpoints: a fork placed before an anchored instruction
	// captures the register file, so the registers the checkpoint's
	// consumers may read are live at that point even though no distilled
	// instruction reads them.
	AtPC func(pc uint64) RegSet
	// ExitLive is the set considered live at ordinary program exits (halt
	// blocks and falls off the end of the code segment). Return blocks and
	// indirect jumps always use AllRegs regardless: their successors are
	// statically unknown code, not an exit.
	ExitLive RegSet
}

// LiveFacts is a solved liveness analysis with per-instruction resolution.
type LiveFacts struct {
	g      *cfg.Graph
	opts   LivenessOptions
	before []RegSet // live set immediately before each code word, by pc-base
}

// liveAnalysis adapts liveness to the generic solver. Fact = RegSet of
// registers live at the point; Bottom = none; Join = union.
type liveAnalysis struct {
	g    *cfg.Graph
	opts LivenessOptions
}

func (liveAnalysis) Direction() Direction { return Backward }
func (liveAnalysis) Bottom() RegSet       { return 0 }

func (a liveAnalysis) Boundary(b *cfg.Block) RegSet {
	if b.IsReturn || b.HasIndirect {
		// Control continues in statically unknown code that may read
		// anything.
		return AllRegs
	}
	if len(b.Succs) == 0 {
		// halt, or falling off the code segment: a genuine exit.
		return a.opts.ExitLive
	}
	return 0
}

func (liveAnalysis) Join(x, y RegSet) (RegSet, bool) {
	u := x.Union(y)
	return u, u != x
}

func (a liveAnalysis) Transfer(b *cfg.Block, out RegSet) RegSet {
	live := out
	for pc := b.End; pc > b.Start; pc-- {
		in := a.g.Prog.InstAt(pc - 1)
		if d, ok := Def(in); ok {
			live = live.Remove(d)
		}
		live = live.Union(Uses(in))
		if a.opts.AtPC != nil {
			live = live.Union(a.opts.AtPC(pc - 1))
		}
	}
	return live
}

// Live computes register liveness over the graph and materializes the fact
// before every instruction.
func Live(g *cfg.Graph, opts LivenessOptions) *LiveFacts {
	a := liveAnalysis{g: g, opts: opts}
	facts := Solve[RegSet](g, a)

	lf := &LiveFacts{g: g, opts: opts, before: make([]RegSet, len(g.Prog.Code.Words))}
	base := g.Prog.Code.Base
	for _, b := range g.Blocks {
		out, _ := a.Join(a.Bottom(), a.Boundary(b))
		for _, succ := range b.Succs {
			out = out.Union(facts.In[succ])
		}
		live := out
		for pc := b.End; pc > b.Start; pc-- {
			in := g.Prog.InstAt(pc - 1)
			if d, ok := Def(in); ok {
				live = live.Remove(d)
			}
			live = live.Union(Uses(in))
			if opts.AtPC != nil {
				live = live.Union(opts.AtPC(pc - 1))
			}
			lf.before[pc-1-base] = live
		}
	}
	return lf
}

// Before returns the registers live immediately before the instruction at
// pc (after any fork-checkpoint uses injected at pc). It panics if pc is
// outside the code segment.
func (f *LiveFacts) Before(pc uint64) RegSet {
	return f.before[pc-f.g.Prog.Code.Base]
}

// After returns the registers live immediately after the instruction at pc:
// the Before fact of the instruction's unique fall-through, or the join over
// the block's out-edges for a terminator.
func (f *LiveFacts) After(pc uint64) RegSet {
	b := f.g.BlockFor(pc)
	if b == nil {
		return AllRegs
	}
	if pc+1 < b.End {
		return f.Before(pc + 1)
	}
	out := liveAnalysis{g: f.g, opts: f.opts}.Boundary(b)
	for _, succ := range b.Succs {
		out = out.Union(f.Before(succ))
	}
	return out
}

// DeadDef reports whether the instruction at pc writes a register whose
// value is dead: no path from pc reads it before it is overwritten,
// including any injected checkpoint uses. Instructions without a register
// def are never dead defs.
func (f *LiveFacts) DeadDef(pc uint64) bool {
	d, ok := Def(f.g.Prog.InstAt(pc))
	if !ok {
		return false
	}
	return !f.After(pc).Has(d)
}
