package dataflow

import (
	"mssp/internal/cfg"
	"mssp/internal/isa"
)

// This file implements the forward taint-propagation analysis behind the
// MV009–MV011 vet rules and the static side of the static-dominates-dynamic
// property checked by internal/taint. The lattice tracks, per program point:
//
//   - the set of registers that may hold secret-derived data,
//   - a per-register value-range approximation (the span sublattice) used to
//     resolve load/store addresses against the program's Secret regions, and
//   - a bounded summary of memory words that may hold secret-derived data.
//
// Sources are loads whose resolved address may intersect a Secret region (or
// a tainted memory summary). Propagation follows register reads into ALU
// results, loads, and stores; calls are summarized as may-read-secrets /
// may-taint-everything. Sinks are judged by internal/vet, not here.
//
// Soundness mirrors the other forward analyses: facts only descend, joins
// are monotone, and an indirect jump degrades every fact to top (every
// register tainted, all memory tainted) because a jalr can land mid-block.

// spanKind discriminates the three levels of the span sublattice.
const (
	spanUnknown = iota // no executable path has produced a value yet
	spanRange          // value provably within [lo, hi] on every path
	spanAny            // unanalyzable or conflicting values
)

// span approximates a register value as an unsigned interval. Joins are
// equal-or-top: two distinct ranges join to spanAny rather than their hull,
// which caps the lattice height at three and keeps loop-carried values from
// diverging. Range facts therefore come only from input-independent
// operations (ldi, masking by a non-negative immediate) and overflow-free
// arithmetic on existing ranges.
type span struct {
	kind uint8
	lo   uint64
	hi   uint64
}

func spanPoint(v uint64) span        { return span{kind: spanRange, lo: v, hi: v} }
func spanBetween(lo, hi uint64) span { return span{kind: spanRange, lo: lo, hi: hi} }

var anySpan = span{kind: spanAny}

// joinSpan is the equal-or-top join of the span sublattice.
func joinSpan(a, b span) span {
	switch {
	case a.kind == spanUnknown:
		return b
	case b.kind == spanUnknown:
		return a
	case a == b:
		return a
	default:
		return anySpan
	}
}

// addSpan is the abstract wrapping addition of two spans; any wraparound in
// the bounds degrades to spanAny.
func addSpan(a, b span) span {
	if a.kind == spanUnknown || b.kind == spanUnknown {
		return span{}
	}
	if a.kind == spanAny || b.kind == spanAny {
		return anySpan
	}
	lo := a.lo + b.lo
	hi := a.hi + b.hi
	if lo < a.lo || hi < a.hi || lo > hi {
		return anySpan
	}
	return spanBetween(lo, hi)
}

// overlaps reports whether the span may take a value in [lo, hi).
func (s span) overlaps(lo, hi uint64) bool {
	switch s.kind {
	case spanUnknown:
		return false
	case spanAny:
		return lo < hi
	default:
		return s.lo < hi && s.hi >= lo
	}
}

// memTaintCap bounds the tainted-memory summary; exceeding it degrades the
// summary to "all memory may be tainted".
const memTaintCap = 16

// memTaint summarizes the memory words that may hold secret-derived data:
// empty, a bounded list of address spans, or top. The spans slice is treated
// as immutable — join and add copy on write — so facts can be shared freely
// across the solver's maps.
type memTaint struct {
	top   bool
	spans []span
}

func (m memTaint) mayHold(addr span) bool {
	if m.top {
		return addr.kind != spanUnknown
	}
	for _, s := range m.spans {
		if s.kind == spanRange && addr.overlaps(s.lo, s.hi+1) {
			return true
		}
	}
	return false
}

// add returns the summary with one more possibly-tainted address span.
func (m memTaint) add(addr span) memTaint {
	switch {
	case m.top || addr.kind == spanUnknown:
		return m
	case addr.kind == spanAny:
		return memTaint{top: true}
	}
	for _, s := range m.spans {
		if s == addr {
			return m
		}
	}
	if len(m.spans) >= memTaintCap {
		return memTaint{top: true}
	}
	return memTaint{spans: append(append([]span(nil), m.spans...), addr)}
}

func joinMem(a, b memTaint) memTaint {
	if a.top || b.top {
		return memTaint{top: true}
	}
	out := a
	for _, s := range b.spans {
		out = out.add(s)
	}
	return out
}

func memEqual(a, b memTaint) bool {
	if a.top != b.top || len(a.spans) != len(b.spans) {
		return false
	}
	for i := range a.spans {
		if a.spans[i] != b.spans[i] {
			return false
		}
	}
	return true
}

// taintFact is the per-point fact of the taint analysis. The zero value is
// the solver bottom: unreachable, nothing tainted, all values unknown.
type taintFact struct {
	// live marks points some entry or root reaches; facts at dead points
	// are vacuous and must not drive findings.
	live bool
	// regs is the set of registers that may hold secret-derived data.
	regs RegSet
	// vals approximates each register's value for address resolution.
	vals [isa.NumRegs]span
	// mem summarizes memory words that may hold secret-derived data.
	mem memTaint
}

func joinFact(a, b taintFact) (taintFact, bool) {
	out := taintFact{
		live: a.live || b.live,
		regs: a.regs.Union(b.regs),
		mem:  joinMem(a.mem, b.mem),
	}
	for r := 1; r < isa.NumRegs; r++ {
		out.vals[r] = joinSpan(a.vals[r], b.vals[r])
	}
	changed := out.live != a.live || out.regs != a.regs || !memEqual(out.mem, a.mem)
	if !changed {
		for r := 1; r < isa.NumRegs; r++ {
			if out.vals[r] != a.vals[r] {
				changed = true
				break
			}
		}
	}
	return out, changed
}

// TaintOptions configures the taint analysis.
type TaintOptions struct {
	// Secret lists the word-address regions loads are tainted by. With no
	// regions the analysis is vacuous: nothing is ever tainted.
	Secret []isa.Region
	// Roots are program counters treated as alternate entry points with
	// arbitrary (but untainted) register state — fork anchors, where slave
	// tasks begin from master checkpoints the analysis cannot see. A root
	// joins arbitrary values into the flow rather than replacing it: a task
	// may run through several anchors (fork spacing, full queues), so taint
	// arriving at an anchor must survive past it.
	Roots []uint64
	// EntryArbitrary treats the program entry's registers as holding
	// arbitrary values instead of the loader's zeroed register file, for
	// programs entered from arbitrary architected state (distilled code).
	EntryArbitrary bool
}

// TaintFacts is a solved taint analysis with per-instruction resolution.
type TaintFacts struct {
	g      *cfg.Graph
	base   uint64
	before []taintCell
}

type taintCell struct {
	regs   RegSet
	live   bool
	source bool
}

// taintAnalysis adapts the taint problem to the generic solver.
type taintAnalysis struct {
	g      *cfg.Graph
	secret []isa.Region
	rootPC map[uint64]bool
	entry  taintFact
}

func (a *taintAnalysis) Direction() Direction { return Forward }
func (a *taintAnalysis) Bottom() taintFact    { return taintFact{} }

func (a *taintAnalysis) Boundary(b *cfg.Block) taintFact {
	if b.Start <= a.g.Prog.Entry && a.g.Prog.Entry < b.End {
		return a.entry
	}
	return taintFact{}
}

func (a *taintAnalysis) Join(x, y taintFact) (taintFact, bool) { return joinFact(x, y) }

func (a *taintAnalysis) Transfer(b *cfg.Block, in taintFact) taintFact {
	f := in
	for pc := b.Start; pc < b.End; pc++ {
		a.step(pc, &f)
	}
	return f
}

// step applies the root join and one instruction's effect at pc. It is
// shared by Transfer and the per-instruction materialization pass.
func (a *taintAnalysis) step(pc uint64, f *taintFact) {
	if a.rootPC[pc] {
		root := taintFact{live: true}
		for r := 1; r < isa.NumRegs; r++ {
			root.vals[r] = anySpan
		}
		*f, _ = joinFact(*f, root)
	}
	stepTaint(a.g.Prog.InstAt(pc), pc, a.secret, f)
}

// readTaint reports whether any register the instruction reads is tainted.
func readTaint(in isa.Inst, f *taintFact) bool {
	if in.Op.ReadsRs1() && f.regs.Has(in.Rs1) {
		return true
	}
	if in.Op.ReadsRs2() && f.regs.Has(in.Rs2) {
		return true
	}
	return false
}

// valOf reads a register's span; r0 is the constant zero.
func valOf(f *taintFact, r uint8) span {
	if r == isa.RegZero {
		return spanPoint(0)
	}
	return f.vals[r]
}

func setVal(f *taintFact, r uint8, s span) {
	if r != isa.RegZero {
		f.vals[r] = s
	}
}

func setTaint(f *taintFact, r uint8, tainted bool) {
	if r == isa.RegZero {
		return
	}
	if tainted {
		f.regs = f.regs.Add(r)
	} else {
		f.regs = f.regs.Remove(r)
	}
}

// secretOverlap reports whether an address span may touch a secret region.
func secretOverlap(addr span, secret []isa.Region) bool {
	for _, r := range secret {
		if addr.overlaps(r.Lo, r.Hi) {
			return true
		}
	}
	return false
}

// loadAddr resolves the effective address span of a load or store at f.
func loadAddr(in isa.Inst, f *taintFact) span {
	return addSpan(valOf(f, in.Rs1), spanPoint(uint64(in.Imm)))
}

// stepTaint applies one instruction's effect on the taint fact.
func stepTaint(in isa.Inst, pc uint64, secret []isa.Region, f *taintFact) {
	if IsCall(in) {
		// Callee summary: the callee may load any secret and may write any
		// register or memory word with the result.
		f.regs = AllRegs
		for r := 1; r < isa.NumRegs; r++ {
			f.vals[r] = anySpan
		}
		f.mem = memTaint{top: true}
		return
	}
	d, hasDef := Def(in)
	switch {
	case in.Op == isa.OpLdi:
		if hasDef {
			setVal(f, d, spanPoint(uint64(in.Imm)))
			setTaint(f, d, false)
		}
	case in.Op == isa.OpLd:
		if hasDef {
			addr := loadAddr(in, f)
			tainted := f.regs.Has(in.Rs1) || secretOverlap(addr, secret) || f.mem.mayHold(addr)
			setVal(f, d, anySpan)
			setTaint(f, d, tainted)
		}
	case in.Op == isa.OpSt:
		if f.regs.Has(in.Rs2) {
			f.mem = f.mem.add(loadAddr(in, f))
		}
	case in.Op == isa.OpJal:
		if hasDef {
			setVal(f, d, spanPoint(pc+1))
			setTaint(f, d, false)
		}
	case hasDef:
		setVal(f, d, aluSpan(in, f))
		setTaint(f, d, readTaint(in, f))
	}
}

// aluSpan approximates an ALU result. Exact when every operand is a single
// point (reusing the interpreter-mirroring evaluator); otherwise only
// input-independent or overflow-checked bounds are kept, so ranges stay
// stable across loop back-edges.
func aluSpan(in isa.Inst, f *taintFact) span {
	a := valOf(f, in.Rs1)
	b := spanPoint(uint64(in.Imm))
	if in.Op.ReadsRs2() {
		b = valOf(f, in.Rs2)
	}
	if a.kind == spanRange && a.lo == a.hi && b.kind == spanRange && b.lo == b.hi {
		if v, ok := evalALU(in.Op, a.lo, b.lo); ok {
			return spanPoint(v)
		}
	}
	switch in.Op {
	case isa.OpLdih:
		return anySpan
	case isa.OpAndi:
		// Masking by a non-negative immediate bounds the result regardless
		// of the input — the idiom that keeps gadget indices analyzable.
		if in.Imm >= 0 {
			return spanBetween(0, uint64(in.Imm))
		}
	case isa.OpAnd:
		// a & b never exceeds either operand (unsigned).
		hi := ^uint64(0)
		if a.kind == spanRange && a.hi < hi {
			hi = a.hi
		}
		if b.kind == spanRange && b.hi < hi {
			hi = b.hi
		}
		if hi != ^uint64(0) {
			return spanBetween(0, hi)
		}
	case isa.OpAdd, isa.OpAddi:
		if in.Op == isa.OpAddi && in.Imm < 0 {
			return anySpan
		}
		return addSpan(a, b)
	case isa.OpSlli:
		if a.kind == spanRange {
			k := uint64(in.Imm) & 63
			if a.hi<<k>>k == a.hi {
				return spanBetween(a.lo<<k, a.hi<<k)
			}
		}
	}
	return anySpan
}

// Taint runs the forward taint analysis over g. With an empty Secret list
// the result is vacuously clean. If the graph has an indirect jump every
// fact degrades to top: all registers tainted at every point.
func Taint(g *cfg.Graph, opts TaintOptions) *TaintFacts {
	tf := &TaintFacts{
		g:      g,
		base:   g.Prog.Code.Base,
		before: make([]taintCell, len(g.Prog.Code.Words)),
	}
	if len(opts.Secret) == 0 {
		return tf
	}
	if g.HasIndirect {
		for i := range tf.before {
			src := g.Prog.InstAt(tf.base+uint64(i)).Op == isa.OpLd
			tf.before[i] = taintCell{regs: AllRegs, live: true, source: src}
		}
		return tf
	}

	a := &taintAnalysis{g: g, secret: opts.Secret, rootPC: make(map[uint64]bool, len(opts.Roots))}
	for _, root := range opts.Roots {
		if g.BlockFor(root) != nil {
			a.rootPC[root] = true
		}
	}
	a.entry.live = true
	for r := uint8(1); r < isa.NumRegs; r++ {
		if opts.EntryArbitrary {
			a.entry.vals[r] = anySpan
		} else {
			a.entry.vals[r] = spanPoint(0)
		}
	}
	// The stack pointer is runtime-seeded even for zeroed entry state.
	a.entry.vals[isa.RegSP] = anySpan

	facts := Solve[taintFact](g, a)

	// Materialize per-instruction facts: rewalk each block from its solved
	// IN fact, recording the fact in force before each instruction (after
	// the root join at that pc — a task entering there sees it too).
	for _, b := range g.Blocks {
		f := facts.In[b.Start]
		for pc := b.Start; pc < b.End; pc++ {
			if a.rootPC[pc] {
				root := taintFact{live: true}
				for r := 1; r < isa.NumRegs; r++ {
					root.vals[r] = anySpan
				}
				f, _ = joinFact(f, root)
			}
			in := g.Prog.InstAt(pc)
			src := false
			if in.Op == isa.OpLd && f.live {
				addr := loadAddr(in, &f)
				src = secretOverlap(addr, opts.Secret) || f.mem.mayHold(addr)
			}
			tf.before[pc-tf.base] = taintCell{regs: f.regs, live: f.live, source: src}
			stepTaint(in, pc, opts.Secret, &f)
		}
	}
	return tf
}

// Reachable reports whether some entry or root reaches pc. Facts at
// unreachable points are vacuous and Before returns the empty set there.
func (f *TaintFacts) Reachable(pc uint64) bool {
	return f.before[pc-f.base].live
}

// Before returns the set of registers that may hold secret-derived data
// immediately before the instruction at pc (empty at unreachable points).
func (f *TaintFacts) Before(pc uint64) RegSet {
	c := f.before[pc-f.base]
	if !c.live {
		return 0
	}
	return c.regs
}

// SourceAt reports whether the instruction at pc is a load that may read a
// secret region or tainted memory — a taint source.
func (f *TaintFacts) SourceAt(pc uint64) bool {
	return f.before[pc-f.base].source
}
