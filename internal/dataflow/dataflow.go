// Package dataflow provides the static program analyses the distiller and
// the msspvet linter run over MIR control-flow graphs: a generic worklist
// solver plus concrete register-liveness, reaching-definitions,
// may-initialized and conditional-constant-propagation analyses.
//
// All analyses are intraprocedural over cfg.Graph and conservative at every
// point where static knowledge runs out:
//
//   - Calls (jal/jalr with a link register) are summarized, not traced: a
//     call may read and may write every register.
//   - Return blocks and indirect-jump blocks have statically unknown
//     successors, so backward analyses apply an explicit all-bets-off
//     boundary fact there.
//   - A graph containing any indirect jump has statically unknown edges into
//     every instruction (a jalr can land mid-block); forward analyses degrade
//     to their most conservative fact at every point in that case.
//     Transformation passes (internal/distill) refuse to run at all on such
//     graphs.
//
// docs/ANALYSIS.md describes each analysis's lattice and transfer function
// and the soundness contract the distiller's passes build on top.
package dataflow

import "mssp/internal/cfg"

// Direction says which way facts flow through the graph.
type Direction int

// The two dataflow directions.
const (
	// Forward propagates facts from predecessors to successors.
	Forward Direction = iota
	// Backward propagates facts from successors to predecessors.
	Backward
)

// Analysis describes one dataflow problem over fact type F. Solve drives it
// to a fixpoint.
type Analysis[F any] interface {
	// Direction reports which way facts flow.
	Direction() Direction
	// Bottom returns the least-information fact blocks start from.
	Bottom() F
	// Boundary returns the fact joined into a block's input edge facts to
	// account for statically invisible flow: for forward analyses it is
	// joined into IN (entry block, unknown predecessors), for backward
	// analyses into OUT (unknown successors: returns, indirect jumps,
	// program exit).
	Boundary(b *cfg.Block) F
	// Join combines two facts, returning the result and whether it differs
	// from the first argument.
	Join(a, b F) (F, bool)
	// Transfer applies the block's effect to its input-side fact, returning
	// the output-side fact (OUT for forward, IN for backward).
	Transfer(b *cfg.Block, in F) F
}

// Facts is a fixpoint solution: the input-side and output-side fact for
// every block, keyed by block start address. For forward analyses In flows
// into the block top and Out leaves the bottom; for backward analyses Out is
// the fact below the block and In the fact above it.
type Facts[F any] struct {
	// In holds each block's fact at its first instruction.
	In map[uint64]F
	// Out holds each block's fact past its last instruction.
	Out map[uint64]F
}

// Solve runs the worklist algorithm to a fixpoint over all blocks of g,
// reachable or not (facts on unreachable blocks converge from Bottom plus
// their own boundary, which is what a conservative consumer wants).
func Solve[F any](g *cfg.Graph, a Analysis[F]) *Facts[F] {
	n := len(g.Blocks)
	facts := &Facts[F]{In: make(map[uint64]F, n), Out: make(map[uint64]F, n)}
	preds := g.Predecessors()

	// edgesIn lists the blocks whose output-side fact feeds this block's
	// input side: predecessors for forward analyses, successors for
	// backward ones.
	edgesIn := func(b *cfg.Block) []uint64 {
		if a.Direction() == Forward {
			return preds[b.Start]
		}
		return b.Succs
	}

	for _, b := range g.Blocks {
		facts.In[b.Start] = a.Bottom()
		facts.Out[b.Start] = a.Bottom()
	}

	// Worklist seeded with every block; FIFO with membership dedup. Block
	// order follows the direction so typical programs converge in few
	// passes.
	queue := make([]uint64, 0, n)
	queued := make(map[uint64]bool, n)
	push := func(s uint64) {
		if !queued[s] {
			queued[s] = true
			queue = append(queue, s)
		}
	}
	if a.Direction() == Forward {
		for _, b := range g.Blocks {
			push(b.Start)
		}
	} else {
		for i := len(g.Blocks) - 1; i >= 0; i-- {
			push(g.Blocks[i].Start)
		}
	}

	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		queued[s] = false
		b := g.ByStart[s]

		inFact, _ := a.Join(a.Bottom(), a.Boundary(b))
		for _, e := range edgesIn(b) {
			if a.Direction() == Forward {
				inFact, _ = a.Join(inFact, facts.Out[e])
			} else {
				inFact, _ = a.Join(inFact, facts.In[e])
			}
		}

		// Transfer is monotone, so joining the new output-side fact into
		// the stored one both detects convergence and keeps growth
		// monotone even for a non-monotone Transfer bug (the solver then
		// still terminates).
		outFact := a.Transfer(b, inFact)
		if a.Direction() == Forward {
			facts.In[s] = inFact
			merged, changed := a.Join(facts.Out[s], outFact)
			if !changed {
				continue
			}
			facts.Out[s] = merged
			for _, succ := range b.Succs {
				push(succ)
			}
		} else {
			facts.Out[s] = inFact
			merged, changed := a.Join(facts.In[s], outFact)
			if !changed {
				continue
			}
			facts.In[s] = merged
			for _, p := range preds[s] {
				push(p)
			}
		}
	}
	return facts
}
