package dataflow

import (
	"math/bits"

	"mssp/internal/cfg"
	"mssp/internal/isa"
)

// A def site is identified by a small dense index. Real sites are
// instructions that write a register (calls count as a may-def site for
// every register, summarizing the callee); each register additionally has an
// entry pseudo-site standing for its pre-execution value.

// DefSet is a bitset over def-site indices.
type DefSet []uint64

func newDefSet(n int) DefSet { return make(DefSet, (n+63)/64) }

func (s DefSet) has(i int) bool { return s[i/64]&(1<<(i%64)) != 0 }
func (s DefSet) add(i int)      { s[i/64] |= 1 << (i % 64) }

func (s DefSet) clone() DefSet {
	c := make(DefSet, len(s))
	copy(c, s)
	return c
}

// union folds t into s, reporting whether s grew.
func (s DefSet) union(t DefSet) bool {
	changed := false
	for i := range s {
		u := s[i] | t[i]
		if u != s[i] {
			s[i] = u
			changed = true
		}
	}
	return changed
}

// Count returns the number of sites in the set.
func (s DefSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// ReachFacts is a solved reaching-definitions analysis: for every
// instruction, the set of def sites that may have produced each register's
// current value.
type ReachFacts struct {
	g *cfg.Graph
	// site index layout: [0, nSites) are (pc, reg) pairs in program order;
	// [nSites, nSites+32) are the per-register entry pseudo-sites.
	sitePC  []uint64
	siteReg []uint8
	index   map[uint64][]int // pc -> site indices defined there
	nSites  int
	// killMask[r] has a bit for every site (real or entry) of register r.
	killMask [isa.NumRegs]DefSet
	before   []DefSet // facts before each code word, by pc-base
}

// reachAnalysis adapts reaching definitions to the generic solver. Fact =
// DefSet (may-reach), Bottom = empty, Join = union.
type reachAnalysis struct {
	f *ReachFacts
	g *cfg.Graph
	// universal is the all-sites fact used as the boundary when the graph
	// has indirect jumps (any block may be entered from anywhere).
	universal DefSet
	// entry is the entry block's boundary: every register's pre-execution
	// pseudo-def.
	entry DefSet
}

func (a reachAnalysis) bottom() DefSet { return newDefSet(a.f.nSites + isa.NumRegs) }

// Reaching computes reaching definitions over the graph and materializes
// the fact before every instruction.
func Reaching(g *cfg.Graph) *ReachFacts {
	f := &ReachFacts{g: g, index: make(map[uint64][]int)}
	base := g.Prog.Code.Base
	for i := range g.Prog.Code.Words {
		pc := base + uint64(i)
		in := g.Prog.InstAt(pc)
		switch {
		case IsCall(in):
			// One may-def site per register, summarizing the callee.
			for r := uint8(1); r < isa.NumRegs; r++ {
				f.index[pc] = append(f.index[pc], len(f.sitePC))
				f.sitePC = append(f.sitePC, pc)
				f.siteReg = append(f.siteReg, r)
			}
		default:
			if d, ok := Def(in); ok {
				f.index[pc] = append(f.index[pc], len(f.sitePC))
				f.sitePC = append(f.sitePC, pc)
				f.siteReg = append(f.siteReg, d)
			}
		}
	}
	f.nSites = len(f.sitePC)
	for r := range f.killMask {
		f.killMask[r] = newDefSet(f.nSites + isa.NumRegs)
		f.killMask[r].add(f.nSites + r)
	}
	for i := 0; i < f.nSites; i++ {
		f.killMask[f.siteReg[i]].add(i)
	}

	a := reachAnalysis{f: f, g: g}
	a.entry = a.bottom()
	for r := 0; r < isa.NumRegs; r++ {
		a.entry.add(f.nSites + r)
	}
	a.universal = a.bottom()
	for i := 0; i < f.nSites+isa.NumRegs; i++ {
		a.universal.add(i)
	}

	// An indirect jump can land on any instruction, including mid-block, so
	// the per-instruction facts must be universal everywhere — the block-
	// level boundary alone is not conservative enough.
	if g.HasIndirect {
		f.before = make([]DefSet, len(g.Prog.Code.Words))
		for i := range f.before {
			f.before[i] = a.universal
		}
		return f
	}

	facts := Solve[DefSet](g, solverReach{a})

	// Materialize per-instruction facts.
	f.before = make([]DefSet, len(g.Prog.Code.Words))
	for _, b := range g.Blocks {
		cur := facts.In[b.Start].clone()
		for pc := b.Start; pc < b.End; pc++ {
			f.before[pc-base] = cur.clone()
			a.step(pc, cur)
		}
	}
	return f
}

// solverReach is the Analysis[DefSet] view of reachAnalysis.
type solverReach struct{ a reachAnalysis }

func (s solverReach) Direction() Direction { return Forward }
func (s solverReach) Bottom() DefSet       { return s.a.bottom() }

func (s solverReach) Boundary(b *cfg.Block) DefSet {
	if s.a.g.HasIndirect {
		// Any block can be a jalr target: every def (and every entry
		// value) may reach it.
		return s.a.universal
	}
	if b.Start == s.a.g.BlockFor(s.a.g.Prog.Entry).Start {
		return s.a.entry
	}
	return s.a.bottom()
}

func (s solverReach) Join(x, y DefSet) (DefSet, bool) {
	out := x.clone()
	changed := out.union(y)
	return out, changed
}

func (s solverReach) Transfer(b *cfg.Block, in DefSet) DefSet {
	cur := in.clone()
	for pc := b.Start; pc < b.End; pc++ {
		s.a.step(pc, cur)
	}
	return cur
}

// step applies one instruction's def effect to the fact in place.
func (a reachAnalysis) step(pc uint64, cur DefSet) {
	in := a.g.Prog.InstAt(pc)
	sites := a.f.index[pc]
	if len(sites) == 0 {
		return
	}
	if IsCall(in) {
		// The call certainly writes rd (killing its other defs) and may
		// write everything else (killing nothing).
		if in.Rd != isa.RegZero {
			a.kill(cur, in.Rd)
		}
		for _, si := range sites {
			cur.add(si)
		}
		return
	}
	d, _ := Def(in)
	a.kill(cur, d)
	cur.add(sites[0])
}

// kill removes every site (including the entry pseudo-site) for register r.
func (a reachAnalysis) kill(cur DefSet, r uint8) {
	for i, w := range a.f.killMask[r] {
		cur[i] &^= w
	}
}

// DefsBefore returns the program counters of the def sites of register r
// that may reach the point immediately before pc, plus whether the
// register's pre-execution entry value may still reach there.
func (f *ReachFacts) DefsBefore(pc uint64, r uint8) (sites []uint64, entry bool) {
	cur := f.before[pc-f.g.Prog.Code.Base]
	for i := 0; i < f.nSites; i++ {
		if f.siteReg[i] == r && cur.has(i) {
			sites = append(sites, f.sitePC[i])
		}
	}
	return sites, cur.has(f.nSites + int(r))
}

// ReachesBefore reports whether the def of register r at def-site pc defPC
// may reach the point immediately before pc (or, with entry=true semantics,
// use DefsBefore).
func (f *ReachFacts) ReachesBefore(pc uint64, r uint8, defPC uint64) bool {
	cur := f.before[pc-f.g.Prog.Code.Base]
	for _, si := range f.index[defPC] {
		if f.siteReg[si] == r && cur.has(si) {
			return true
		}
	}
	return false
}

// EntryReachesBefore reports whether register r's pre-execution value may
// reach the point immediately before pc.
func (f *ReachFacts) EntryReachesBefore(pc uint64, r uint8) bool {
	cur := f.before[pc-f.g.Prog.Code.Base]
	return cur.has(f.nSites + int(r))
}
