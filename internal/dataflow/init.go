package dataflow

import "mssp/internal/cfg"

// InitFacts is a solved may-initialized analysis: for every instruction, the
// set of registers some path from the entry has written before reaching it.
// A register read outside this set is provably uninitialized — no execution
// from the entry can have given it a value — which is what the msspvet
// uninitialized-read rule reports.
type InitFacts struct {
	g      *cfg.Graph
	before []RegSet
}

// initAnalysis: fact = registers possibly written; Bottom = none; Join =
// union (may-analysis).
type initAnalysis struct {
	g     *cfg.Graph
	entry RegSet
}

func (initAnalysis) Direction() Direction { return Forward }
func (initAnalysis) Bottom() RegSet       { return 0 }

func (a initAnalysis) Boundary(b *cfg.Block) RegSet {
	if a.g.HasIndirect {
		// Any block may be entered through a jalr from anywhere; assume
		// everything may be initialized (the lint stays quiet rather than
		// guessing).
		return AllRegs
	}
	if b.Start == a.g.BlockFor(a.g.Prog.Entry).Start {
		return a.entry
	}
	return 0
}

func (initAnalysis) Join(x, y RegSet) (RegSet, bool) {
	u := x.Union(y)
	return u, u != x
}

func (a initAnalysis) Transfer(b *cfg.Block, in RegSet) RegSet {
	cur := in
	for pc := b.Start; pc < b.End; pc++ {
		cur = cur.Union(defsOf(a.g, pc))
	}
	return cur
}

// defsOf returns the registers the instruction at pc may write: its def, or
// every register for a call (callee summary).
func defsOf(g *cfg.Graph, pc uint64) RegSet {
	in := g.Prog.InstAt(pc)
	if IsCall(in) {
		return AllRegs
	}
	if d, ok := Def(in); ok {
		return RegSet(0).Add(d)
	}
	return 0
}

// MayInit computes the may-initialized analysis. entryInit is the set of
// registers the runtime seeds before the first instruction (the stack
// pointer, for MIR programs started through state.NewFromProgram).
func MayInit(g *cfg.Graph, entryInit RegSet) *InitFacts {
	f := &InitFacts{g: g, before: make([]RegSet, len(g.Prog.Code.Words))}

	// An indirect jump can land on any instruction, including mid-block, so
	// everything may be initialized everywhere.
	if g.HasIndirect {
		for i := range f.before {
			f.before[i] = AllRegs
		}
		return f
	}

	a := initAnalysis{g: g, entry: entryInit}
	facts := Solve[RegSet](g, a)

	base := g.Prog.Code.Base
	for _, b := range g.Blocks {
		cur := facts.In[b.Start]
		for pc := b.Start; pc < b.End; pc++ {
			f.before[pc-base] = cur
			cur = cur.Union(defsOf(g, pc))
		}
	}
	return f
}

// Before returns the registers some path may have initialized before the
// instruction at pc.
func (f *InitFacts) Before(pc uint64) RegSet {
	return f.before[pc-f.g.Prog.Code.Base]
}
