module mssp

go 1.22
